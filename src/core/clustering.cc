#include "core/clustering.h"

#include <algorithm>

#include "common/logging.h"
#include "common/parallel.h"
#include "common/timer.h"
#include "core/connectivity.h"
#include "seq/union_find.h"

namespace ampc::core {
namespace {

using graph::NodeId;
using graph::Weight;
using graph::WeightedEdgeList;

// Canonicalizes arbitrary component representatives into "smallest vertex
// id in the cluster" labels, so clusterings compare by equality.
std::vector<NodeId> Canonicalize(const std::vector<NodeId>& rep) {
  const size_t n = rep.size();
  std::vector<NodeId> smallest(n, graph::kInvalidNode);
  for (size_t v = 0; v < n; ++v) {
    smallest[rep[v]] =
        std::min(smallest[rep[v]], static_cast<NodeId>(v));
  }
  std::vector<NodeId> labels(n);
  for (size_t v = 0; v < n; ++v) labels[v] = smallest[rep[v]];
  return labels;
}

// Applies the first `count` merges and returns canonical labels.
std::vector<NodeId> ApplyMerges(int64_t num_nodes,
                                const std::vector<Merge>& merges,
                                size_t count) {
  seq::UnionFind uf(num_nodes);
  for (size_t i = 0; i < count; ++i) uf.Union(merges[i].u, merges[i].v);
  std::vector<NodeId> rep(num_nodes);
  for (int64_t v = 0; v < num_nodes; ++v) {
    rep[v] = static_cast<NodeId>(uf.Find(v));
  }
  return Canonicalize(rep);
}

}  // namespace

Dendrogram::Dendrogram(int64_t num_nodes, std::vector<Merge> merges)
    : num_nodes_(num_nodes), merges_(std::move(merges)) {
  AMPC_CHECK_LE(static_cast<int64_t>(merges_.size()), num_nodes_);
  AMPC_CHECK(std::is_sorted(merges_.begin(), merges_.end(),
                            [](const Merge& a, const Merge& b) {
                              if (a.weight != b.weight)
                                return a.weight < b.weight;
                              return a.edge < b.edge;
                            }))
      << "dendrogram merges must be sorted by (weight, edge)";
}

std::vector<NodeId> Dendrogram::CutAtThreshold(Weight t) const {
  const auto end = std::upper_bound(
      merges_.begin(), merges_.end(), t,
      [](Weight value, const Merge& m) { return value < m.weight; });
  return ApplyMerges(num_nodes_, merges_,
                     static_cast<size_t>(end - merges_.begin()));
}

std::vector<NodeId> Dendrogram::CutToClusters(int64_t k) const {
  AMPC_CHECK_GE(k, num_components());
  AMPC_CHECK_LE(k, num_nodes_);
  return ApplyMerges(num_nodes_, merges_,
                     static_cast<size_t>(num_nodes_ - k));
}

int64_t CountClusters(const std::vector<NodeId>& labels) {
  std::vector<NodeId> distinct(labels);
  std::sort(distinct.begin(), distinct.end());
  distinct.erase(std::unique(distinct.begin(), distinct.end()),
                 distinct.end());
  return static_cast<int64_t>(distinct.size());
}

Dendrogram AmpcSingleLinkage(sim::Cluster& cluster,
                             const WeightedEdgeList& list,
                             const ClusteringOptions& options) {
  MsfResult msf = AmpcMsf(cluster, list, options.msf);

  // The "simple sorting step": order the forest edges by weight. Sorting
  // n records is one AMPC shuffle.
  WallTimer timer;
  std::vector<Merge> merges;
  merges.reserve(msf.edges.size());
  for (graph::EdgeId id : msf.edges) {
    const graph::WeightedEdge& e = list.edges[id];
    merges.push_back(Merge{e.u, e.v, e.w, e.id});
  }
  ParallelSort(cluster.pool(), merges,
               [](const Merge& a, const Merge& b) {
                 if (a.weight != b.weight) return a.weight < b.weight;
                 return a.edge < b.edge;
               });
  // The sort's records land on the shard owners of their edge ids.
  const std::vector<int64_t> merge_bytes = cluster.AttributeShardedBytes(
      static_cast<int64_t>(merges.size()),
      [&](int64_t i) {
        return cluster.MachineOf(merges[i].edge,
                                 static_cast<int64_t>(list.edges.size()));
      },
      [](int64_t) { return static_cast<int64_t>(sizeof(Merge)); });
  cluster.AccountShardedShuffle("SortMerges", merge_bytes, timer.Seconds());

  return Dendrogram(list.num_nodes, std::move(merges));
}

std::vector<NodeId> AmpcCutAtThreshold(sim::Cluster& cluster,
                                       const Dendrogram& dendrogram,
                                       Weight t, const MsfOptions& options) {
  // Filter merges by threshold (a map round) and hand the forest to the
  // AMPC connectivity algorithm — the paper's Section 1 recipe.
  graph::EdgeList forest;
  forest.num_nodes = dendrogram.num_nodes();
  for (const Merge& m : dendrogram.merges()) {
    if (m.weight <= t) forest.edges.push_back(graph::Edge{m.u, m.v});
  }
  cluster.AccountMapRound("FilterMerges");
  ConnectivityResult cc = AmpcConnectivity(cluster, forest, options);
  return Canonicalize(cc.component);
}

}  // namespace ampc::core
