#include "core/msf.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <memory>
#include <queue>
#include <unordered_set>

#include "common/concurrent_bag.h"
#include "common/frontier.h"
#include "common/logging.h"
#include "common/parallel.h"
#include "common/timer.h"
#include "core/priorities.h"
#include "graph/contraction.h"
#include "graph/ternarize.h"
#include "kv/sharded_store.h"
#include "seq/msf.h"

namespace ampc::core {
namespace {

using graph::ContractedGraph;
using graph::EdgeId;
using graph::kInvalidNode;
using graph::NodeId;
using graph::Weight;
using graph::WeightedEdgeList;
using graph::WeightedGraph;

// A weighted adjacency entry as stored in the DHT.
struct WAdj {
  NodeId to;
  EdgeId id;
  Weight w;
};
static_assert(std::is_trivially_copyable_v<WAdj>);

using WAdjStore = kv::ShardedStore<std::vector<WAdj>>;

bool WAdjLess(const WAdj& a, const WAdj& b) {
  if (a.w != b.w) return a.w < b.w;
  return a.id < b.id;
}

// Result of one truncated Prim search.
struct SearchOutput {
  std::vector<EdgeId> msf_edges;
  NodeId stop_parent = kInvalidNode;  // set when rule (3) fired
};

struct WAdjGreater {
  bool operator()(const WAdj& a, const WAdj& b) const {
    return WAdjLess(b, a);
  }
};

// Resumable state of Algorithm 1's per-vertex search: Prim from
// `origin`, stopping on (1) search_limit explored vertices, (2)
// exhausted component, or (3) adding an edge to a vertex preceding
// `origin` in the permutation. The search runs until it either needs a
// remote adjacency (`pending` set) or terminates (`done` set), so a
// worker can run many searches in lockstep and fetch every pending
// adjacency of an adaptive step with one LookupMany batch.
struct PrimSearchState {
  int64_t item = 0;
  NodeId origin = kInvalidNode;
  std::priority_queue<WAdj, std::vector<WAdj>, WAdjGreater> heap;
  std::unordered_set<NodeId> visited;
  SearchOutput out;
  NodeId pending = kInvalidNode;
  bool done = false;
};

// Pops edges until the search terminates or needs the adjacency of
// `pending` (exactly where the scalar search issued its next Lookup).
void AdvancePrimSearch(PrimSearchState& s, uint64_t seed,
                       int64_t search_limit) {
  while (!s.heap.empty()) {
    const WAdj e = s.heap.top();
    s.heap.pop();
    if (s.visited.contains(e.to)) continue;
    // The popped edge is the minimum-order edge leaving the visited set,
    // hence an MSF edge by the cut property (weights totally ordered).
    s.out.msf_edges.push_back(e.id);
    if (VertexBefore(e.to, s.origin, seed)) {
      s.out.stop_parent = e.to;  // rule (3)
      s.done = true;
      return;
    }
    s.visited.insert(e.to);
    if (static_cast<int64_t>(s.visited.size()) >= search_limit) {  // (1)
      s.done = true;
      return;
    }
    s.pending = e.to;
    return;
  }
  s.done = true;  // rule (2): component exhausted
}

// Feeds a fetched adjacency back into the search and keeps going.
void ResumePrimSearch(PrimSearchState& s, const std::vector<WAdj>* next,
                      uint64_t seed, int64_t search_limit) {
  if (next != nullptr) {
    for (const WAdj& f : *next) {
      if (!s.visited.contains(f.to)) s.heap.push(f);
    }
  }
  s.pending = kInvalidNode;
  AdvancePrimSearch(s, seed, search_limit);
}

// Frontier-engine decision for one of the loop's adaptive phases
// (common/frontier.h; connectivity inherits this through AmpcMsf).
// Each phase is one decision — its frontier is the (shrinking) state
// population seeded from `frontier_size` starts with `frontier_edges`
// out-pointers. Returns whether to run the phase in pull mode
// (Cluster::RunPullPhase + DrivePullSteps); notes a sparse round
// otherwise. Always false — the legacy, cost-model bit-identical path
// — when the engine is off.
bool UsePullPhase(sim::Cluster& cluster, int64_t frontier_size,
                  int64_t frontier_edges, int64_t num_vertices,
                  int64_t total_edges) {
  const sim::ClusterConfig::FrontierConfig& frontier_config =
      cluster.config().frontier;
  if (frontier_config.mode == FrontierMode::kSparse) return false;
  FrontierPolicy policy(frontier_config.mode, frontier_config.alpha,
                        frontier_config.beta, num_vertices, total_edges);
  if (policy.UseDense(frontier_size, frontier_edges)) return true;
  cluster.NoteSparseFrontierRound();
  return false;
}

// Core contraction loop over an edge list whose ids are preserved
// throughout. Appends the MSF's edge ids to `result`.
void MsfLoop(sim::Cluster& cluster, WeightedEdgeList current,
             const MsfOptions& options, MsfResult& result) {
  for (int round = 0;; ++round) {
    const int64_t n = current.num_nodes;
    const int64_t m = static_cast<int64_t>(current.edges.size());
    if (m == 0) return;
    if (2 * m <= cluster.config().in_memory_threshold_arcs ||
        round >= options.max_rounds) {
      // In-memory finish. At round 0 the graph must first be gathered;
      // in later rounds the Contract shuffles already materialized it.
      const int64_t bytes =
          m * static_cast<int64_t>(sizeof(graph::WeightedEdge));
      const int64_t items = m + static_cast<int64_t>(
                                    m * std::log2(static_cast<double>(m) + 2));
      if (round == 0) {
        cluster.AccountInMemoryFinish("InMemoryMSF", bytes, items);
      } else {
        cluster.AccountInMemoryCompute("InMemoryMSF", items);
      }
      std::vector<EdgeId> finish = seq::KruskalMsf(current);
      result.edges.insert(result.edges.end(), finish.begin(), finish.end());
      return;
    }
    result.rounds = round + 1;
    const uint64_t round_seed = options.seed + 1000003ULL * round;

    int64_t search_limit = options.search_limit;
    if (search_limit <= 0) {
      search_limit = std::max<int64_t>(
          2, static_cast<int64_t>(
                 std::ceil(std::pow(static_cast<double>(n), options.eps / 2))));
    }

    // --- SortGraph (shuffle): weight-sorted adjacency -------------------
    WallTimer sort_timer;
    WeightedGraph wg = graph::BuildWeightedGraph(current);
    wg.SortAdjacenciesByWeight();
    int64_t graph_bytes = 0;
    for (int64_t v = 0; v < n; ++v) {
      graph_bytes += wg.AdjacencyBytes(static_cast<NodeId>(v));
    }
    cluster.AccountShuffle("SortGraph", graph_bytes, sort_timer.Seconds());

    // --- KV-Write --------------------------------------------------------
    WAdjStore store = cluster.MakeStore<std::vector<WAdj>>(n);
    cluster.RunKvWritePhase("KV-Write", store, n, [&](int64_t v) {
      const NodeId node = static_cast<NodeId>(v);
      auto nbrs = wg.neighbors(node);
      auto ws = wg.weights(node);
      auto ids = wg.edge_ids(node);
      std::vector<WAdj> row(nbrs.size());
      for (size_t i = 0; i < nbrs.size(); ++i) {
        row[i] = WAdj{nbrs[i], ids[i], ws[i]};
      }
      return row;
    });

    // --- PrimSearch (batched map) ----------------------------------------
    // Every worker runs its searches together: each adaptive step
    // gathers the frontier vertex of every still-active search and
    // fetches all their adjacencies as pipelined sub-batch windows (up
    // to pipeline_depth in flight, their round trips overlapped),
    // instead of one synchronous round trip per expansion. Adjacencies
    // that several searches of a machine expand — hub vertices,
    // overlapping components — are served from the machine's query
    // cache after the first fetch. Per-search semantics are unchanged.
    ConcurrentBag<EdgeId> found_edges;
    std::vector<NodeId> parent(n, kInvalidNode);
    // Every vertex originates a search, so the phase's frontier covers
    // the whole round graph — dense under the hybrid policy whenever
    // the round graph has edges.
    const bool prim_pull = UsePullPhase(cluster, n, 2 * m, n, 2 * m);
    const auto prim_slice =
        [&](std::span<const int64_t> items, sim::MachineContext& ctx) {
          std::vector<PrimSearchState> searches(items.size());
          for (size_t i = 0; i < items.size(); ++i) {
            PrimSearchState& s = searches[i];
            s.item = items[i];
            s.origin = static_cast<NodeId>(items[i]);
            const std::vector<WAdj>* adj = ctx.LookupLocal(store, s.origin);
            if (adj == nullptr || adj->empty()) {
              s.done = true;
              continue;
            }
            s.visited.insert(s.origin);
            for (const WAdj& e : *adj) s.heap.push(e);
            AdvancePrimSearch(s, round_seed, search_limit);
          }
          const auto done = [](const PrimSearchState& s) { return s.done; };
          const auto key = [](const PrimSearchState& s) {
            return static_cast<uint64_t>(s.pending);
          };
          const auto resume = [&](PrimSearchState& s,
                                  const std::vector<WAdj>* next) {
            ResumePrimSearch(s, next, round_seed, search_limit);
          };
          if (prim_pull) {
            sim::DrivePullSteps(ctx, store, searches, done, key, resume);
          } else {
            sim::DriveLookupPipelined(ctx, store, searches, done, key,
                                      resume);
          }
          for (PrimSearchState& s : searches) {
            parent[s.item] = s.out.stop_parent;
            found_edges.Merge(std::move(s.out.msf_edges));
          }
        };
    if (prim_pull) {
      cluster.RunPullPhase("PrimSearch", n, prim_slice);
    } else {
      cluster.RunBatchMapPhase("PrimSearch", n, prim_slice);
    }
    std::vector<EdgeId> emitted = found_edges.Take();
    ParallelSort(cluster.pool(), emitted);
    emitted.erase(std::unique(emitted.begin(), emitted.end()), emitted.end());
    result.edges.insert(result.edges.end(), emitted.begin(), emitted.end());

    // --- Combine (shuffle): visitor tuples grouped by visited vertex ----
    int64_t stopped = 0;
    for (NodeId p : parent) stopped += (p != kInvalidNode);
    cluster.AccountShuffle(
        "Combine", stopped * (kv::kKeyBytes + sizeof(NodeId)));

    // --- PointerJump: write parent map, chase chains to roots ------------
    kv::ShardedStore<NodeId> parent_store = cluster.MakeStore<NodeId>(n);
    cluster.RunKvWritePhase("PointerJumpBuild", parent_store, n,
                            [&](int64_t v) { return parent[v]; });
    // The parent-map construction is itself a shuffle in the Flume
    // implementation (Section 5.5 counts it among the 5 AMPC MSF
    // shuffles).
    cluster.AccountShuffle("PointerJumpBuild",
                           n * (kv::kKeyBytes + sizeof(NodeId)));
    std::vector<NodeId> root_of(n);
    std::atomic<int64_t> max_chain{0};
    // Batched pointer jumping: all of a worker's chains advance one hop
    // per adaptive step, and the step's parent fetches ship as
    // pipelined sub-batch windows — the round-trip bill scales with the
    // longest chain times the destination count over the pipeline
    // depth, not with the total hop count. Chains converge toward
    // shared roots, so the query cache serves the hops near convergence
    // locally (the Figure-4 caching win). The chain frontier is the
    // `stopped` vertices, each holding one out-pointer into a pointer
    // graph of at most n arcs — the hybrid policy pulls when most of
    // the round graph stopped, pushes when chains are scarce.
    const bool jump_pull = UsePullPhase(cluster, stopped, stopped, n, n);
    const auto jump_slice =
        [&](std::span<const int64_t> items, sim::MachineContext& ctx) {
          struct Chain {
            int64_t item;
            NodeId cur;
            int64_t hops;
            bool done;
          };
          std::vector<Chain> chains;
          chains.reserve(items.size());
          int64_t local_max = 0;
          for (const int64_t item : items) {
            const NodeId next = parent[item];  // own record: local input
            if (next == kInvalidNode) {
              root_of[item] = static_cast<NodeId>(item);
            } else {
              chains.push_back(Chain{item, next, 1, false});
            }
          }
          const auto done = [](const Chain& c) { return c.done; };
          const auto key = [](const Chain& c) {
            return static_cast<uint64_t>(c.cur);
          };
          const auto resume = [&](Chain& c, const NodeId* p) {
            const NodeId next = (p == nullptr) ? kInvalidNode : *p;
            if (next == kInvalidNode) {
              root_of[c.item] = c.cur;
              local_max = std::max(local_max, c.hops);
              c.done = true;
            } else {
              c.cur = next;
              ++c.hops;
            }
          };
          if (jump_pull) {
            sim::DrivePullSteps(ctx, parent_store, chains, done, key,
                                resume);
          } else {
            sim::DriveLookupPipelined(ctx, parent_store, chains, done, key,
                                      resume);
          }
          int64_t seen = max_chain.load(std::memory_order_relaxed);
          while (local_max > seen &&
                 !max_chain.compare_exchange_weak(
                     seen, local_max, std::memory_order_relaxed)) {
          }
        };
    if (jump_pull) {
      cluster.RunPullPhase("PointerJump", n, jump_slice);
    } else {
      cluster.RunBatchMapPhase("PointerJump", n, jump_slice);
    }
    result.max_jump_chain =
        std::max(result.max_jump_chain, max_chain.load());

    // --- Contract (two shuffles in the Flume implementation) -------------
    WallTimer contract_timer;
    ContractedGraph contracted = graph::ContractEdgeList(current, root_of);
    const int64_t edge_bytes =
        static_cast<int64_t>(current.edges.size()) *
        static_cast<int64_t>(sizeof(graph::WeightedEdge));
    const int64_t contracted_bytes =
        static_cast<int64_t>(contracted.list.edges.size()) *
        static_cast<int64_t>(sizeof(graph::WeightedEdge));
    const double contract_wall = contract_timer.Seconds();
    cluster.AccountShuffle("Contract", edge_bytes, contract_wall / 2);
    cluster.AccountShuffle(
        "Contract", contracted_bytes + n * static_cast<int64_t>(sizeof(NodeId)),
        contract_wall / 2);

    // Progress guard: Lemma 3.3 promises an Omega(n^{eps/2}) shrink; if a
    // pathological input defeats it, finish in memory rather than loop.
    if (contracted.list.num_nodes >= n) {
      const int64_t items = static_cast<int64_t>(contracted.list.edges.size());
      cluster.AccountInMemoryCompute("InMemoryMSF", items);
      std::vector<EdgeId> finish = seq::KruskalMsf(contracted.list);
      result.edges.insert(result.edges.end(), finish.begin(), finish.end());
      return;
    }
    current = std::move(contracted.list);
  }
}

}  // namespace

MsfResult AmpcMsf(sim::Cluster& cluster, const WeightedEdgeList& list,
                  const MsfOptions& options) {
  MsfResult result;
  if (options.ternarize) {
    // Algorithm 2's sparse path: bound degrees by 3 first; dummy cycle
    // edges are lighter than every real edge, so they join the MSF and
    // are stripped from the output.
    graph::Ternarized t = graph::TernarizeGraph(list);
    MsfLoop(cluster, t.list, options, result);
    result.edges = graph::StripDummyEdges(t, result.edges);
  } else {
    MsfLoop(cluster, list, options, result);
  }
  ParallelSort(cluster.pool(), result.edges);
  result.edges.erase(std::unique(result.edges.begin(), result.edges.end()),
                     result.edges.end());
  return result;
}

}  // namespace ampc::core
