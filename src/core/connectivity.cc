#include "core/connectivity.h"

#include <unordered_set>

#include "common/timer.h"
#include "trees/rooted_forest.h"

namespace ampc::core {

using graph::EdgeList;
using graph::NodeId;
using graph::WeightedEdge;
using graph::WeightedEdgeList;

ConnectivityResult AmpcConnectivity(sim::Cluster& cluster,
                                    const EdgeList& list,
                                    const MsfOptions& options) {
  // Any spanning forest works; unit weights with id tie-breaks make the
  // MSF a spanning forest while keeping the edge order deterministic.
  const WeightedEdgeList weighted = graph::MakeUnitWeighted(list);
  MsfResult msf = AmpcMsf(cluster, weighted, options);

  ConnectivityResult result;
  result.forest_edges = msf.edges;

  // ForestConnectivity (Proposition 3.2 stand-in): root every tree and
  // propagate the root label. Charged as two shuffles plus a map round.
  WallTimer timer;
  std::unordered_set<graph::EdgeId> in_forest(msf.edges.begin(),
                                              msf.edges.end());
  std::vector<WeightedEdge> forest_edges;
  forest_edges.reserve(msf.edges.size());
  for (const WeightedEdge& e : weighted.edges) {
    if (in_forest.contains(e.id)) forest_edges.push_back(e);
  }
  trees::RootedForest forest =
      trees::BuildRootedForest(list.num_nodes, forest_edges);
  const double wall = timer.Seconds();
  const int64_t forest_bytes =
      static_cast<int64_t>(forest_edges.size()) *
      static_cast<int64_t>(sizeof(WeightedEdge));
  cluster.AccountShuffle("ForestConnectivity", forest_bytes, wall / 2);
  cluster.AccountShuffle("ForestConnectivity",
                         list.num_nodes *
                             static_cast<int64_t>(sizeof(NodeId)),
                         wall / 2);
  cluster.AccountMapRound("ForestConnectivity");

  result.component = forest.root;
  std::unordered_set<NodeId> distinct(result.component.begin(),
                                      result.component.end());
  result.num_components = static_cast<int64_t>(distinct.size());
  return result;
}

}  // namespace ampc::core
