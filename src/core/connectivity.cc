#include "core/connectivity.h"

#include <unordered_set>

#include "common/timer.h"
#include "trees/rooted_forest.h"

namespace ampc::core {

using graph::EdgeList;
using graph::NodeId;
using graph::WeightedEdge;
using graph::WeightedEdgeList;

ConnectivityResult AmpcConnectivity(sim::Cluster& cluster,
                                    const EdgeList& list,
                                    const MsfOptions& options) {
  // Any spanning forest works; unit weights with id tie-breaks make the
  // MSF a spanning forest while keeping the edge order deterministic.
  // The frontier engine (ClusterConfig::frontier, common/frontier.h)
  // reaches connectivity through these AmpcMsf rounds: with the engine
  // active, each round's PrimSearch and PointerJump phases pick push or
  // pull per the dense/sparse policy in msf.cc — outputs are identical
  // in every mode.
  const WeightedEdgeList weighted = graph::MakeUnitWeighted(list);
  MsfResult msf = AmpcMsf(cluster, weighted, options);

  ConnectivityResult result;
  result.forest_edges = msf.edges;

  // ForestConnectivity (Proposition 3.2 stand-in): root every tree and
  // propagate the root label. Charged as two shuffles plus a map round.
  WallTimer timer;
  std::unordered_set<graph::EdgeId> in_forest(msf.edges.begin(),
                                              msf.edges.end());
  std::vector<WeightedEdge> forest_edges;
  forest_edges.reserve(msf.edges.size());
  for (const WeightedEdge& e : weighted.edges) {
    if (in_forest.contains(e.id)) forest_edges.push_back(e);
  }
  trees::RootedForest forest =
      trees::BuildRootedForest(list.num_nodes, forest_edges);
  const double wall = timer.Seconds();
  // Charge both shuffles to the machines whose DHT shards receive the
  // records: forest edges land with their child endpoint's owner, root
  // labels with the labelled vertex's owner. Skewed ownership (many tree
  // edges hashing to one machine) lengthens the round accordingly.
  const std::vector<int64_t> edge_bytes = cluster.AttributeShardedBytes(
      static_cast<int64_t>(forest_edges.size()),
      [&](int64_t i) {
        return cluster.MachineOf(forest_edges[i].u, list.num_nodes);
      },
      [](int64_t) { return static_cast<int64_t>(sizeof(WeightedEdge)); });
  cluster.AccountShardedShuffle("ForestConnectivity", edge_bytes, wall / 2);
  const std::vector<int64_t> label_bytes = cluster.AttributeShardedBytes(
      list.num_nodes,
      [&](int64_t v) { return cluster.MachineOf(v, list.num_nodes); },
      [](int64_t) { return static_cast<int64_t>(sizeof(NodeId)); });
  cluster.AccountShardedShuffle("ForestConnectivity", label_bytes, wall / 2);
  cluster.AccountMapRound("ForestConnectivity");

  result.component = forest.root;
  std::unordered_set<NodeId> distinct(result.component.begin(),
                                      result.component.end());
  result.num_components = static_cast<int64_t>(distinct.size());
  return result;
}

}  // namespace ampc::core
