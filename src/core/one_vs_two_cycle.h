// AMPC 1-vs-2-Cycle (paper Section 5.6).
//
// Input: a graph promised to be a disjoint union of one cycle on n
// vertices or two cycles on n/2 vertices each (the conjectured
// Omega(log n)-round problem for MPC). The AMPC algorithm samples
// vertices with a fixed probability (the paper uses 1/1024), walks from
// every sample around the cycle to the next sample using DHT lookups,
// contracts the cycle onto the samples, and solves the contracted
// instance on a single machine — a single shuffle in total.
#pragma once

#include <cstdint>

#include "graph/graph.h"
#include "sim/cluster.h"

namespace ampc::core {

struct CycleOptions {
  uint64_t seed = 42;
  /// Vertex sampling probability (paper: 1/1024).
  double sample_probability = 1.0 / 1024.0;
  /// If a sampling round leaves cycles uncovered and ambiguous, the
  /// probability is multiplied by this factor and the round repeated
  /// (w.h.p. never needed at benchmark sizes).
  double retry_growth = 8.0;
  int max_attempts = 8;
};

struct CycleResult {
  /// Number of cycles found (1 or 2).
  int num_cycles = 0;
  /// Vertices visited by all walks in the final attempt.
  int64_t visited = 0;
  /// Samples drawn in the final attempt.
  int64_t samples = 0;
  int attempts = 0;
};

/// Distinguishes one cycle from two. CHECK-fails if a vertex of degree
/// != 2 is encountered (the input promise is violated).
CycleResult AmpcOneVsTwoCycle(sim::Cluster& cluster, const graph::Graph& g,
                              const CycleOptions& options = {});

}  // namespace ampc::core
