// The Karger–Klein–Tarjan query-complexity reduction (paper Section 3.1,
// Algorithm 3) and the F-light edge filter (Appendix B, Algorithm 5).
//
// MSF(G) is computed as: sample each edge with probability p ~ 1/log n,
// compute F = MSF(sample) recursively, discard every F-heavy edge
// (Proposition 3.8 shows no MSF edge is F-heavy), and finish on the
// surviving F-light edges — expected O(n/p) of them (Lemma 3.9).
//
// F-lightness is decided with the Appendix B toolchain: connected
// components of F, tree rooting, levels, Euler-tour LCA and heavy-light
// decomposition with range-maximum structures (trees/ module).
#pragma once

#include <cstdint>
#include <vector>

#include "core/msf.h"
#include "graph/graph.h"
#include "sim/cluster.h"

namespace ampc::core {

struct KktOptions {
  MsfOptions msf;
  /// Sampling probability; 0 derives 1/log2(n).
  double sample_probability = 0;
};

struct KktResult {
  std::vector<graph::EdgeId> msf_edges;  // sorted
  int64_t sampled_edges = 0;
  int64_t light_edges = 0;
};

/// Algorithm 3 end to end.
KktResult AmpcMsfKkt(sim::Cluster& cluster,
                     const graph::WeightedEdgeList& list,
                     const KktOptions& options = {});

/// Algorithm 5: given a forest F (edges of `list` selected by
/// `forest_edge_ids`), classifies every edge of `list` as F-light or
/// F-heavy. Exposed separately for testing. Lightness uses the library's
/// total edge order: e is light iff both endpoints are in different trees
/// of F, or (w_e, id_e) <= max over the F-path of (w_f, id_f).
std::vector<uint8_t> FindLightEdges(
    sim::Cluster& cluster, const graph::WeightedEdgeList& list,
    const std::vector<graph::EdgeId>& forest_edge_ids);

}  // namespace ampc::core
