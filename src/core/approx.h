// Corollary 4.1: the approximation algorithms the paper derives from the
// maximal-matching black box of Theorem 2.
//
//  * AmpcVertexCover — the endpoints of a maximal matching form a
//    2-approximate minimum vertex cover (classic Gavril/Yannakakis bound).
//    Same round/space guarantees as AmpcMatching.
//
//  * AmpcApproxMaxWeightMatching — a (2 + O(eps))-approximate maximum
//    weight matching from ONE maximal-matching call: weights are rounded
//    down to powers of (1 + eps) and the weight class becomes the major
//    key of the matching permutation (MatchingOptions::edge_buckets), so
//    the lexicographically-first maximal matching IS the greedy matching
//    by non-increasing rounded weight — a 2-approximation on rounded
//    weights, hence 2(1+eps) on true weights. Edges lighter than
//    (eps/n) * w_max are dropped first, which bounds the number of weight
//    classes by O(log(n/eps)/eps) and costs at most an extra (1 - eps/2)
//    factor (any matching holds <= n/2 such edges and OPT >= w_max).
//
//  * AmpcApproxMaximumMatching — a (1 + eps)-approximate maximum
//    cardinality matching: starting from a maximal matching, repeatedly
//    find and apply vertex-disjoint augmenting paths of length up to
//    2*ceil(1/eps) - 1. By the Hopcroft–Karp lemma, once no augmenting
//    path of length < 2k+1 exists, |M| >= k/(k+1) * |M*|, i.e. a
//    (1 + 1/k)-approximation — this holds for general (non-bipartite)
//    graphs because M xor M* decomposes into alternating paths and
//    cycles. Path search runs from each free vertex as an exhaustive
//    bounded-depth DFS over the DHT-resident adjacency — the same
//    "local exploration instead of shuffles" pattern as the paper's
//    query processes. Each search phase is one cheap round; committing a
//    maximal disjoint set of found paths is one shuffle.
#pragma once

#include <cstdint>
#include <vector>

#include "core/matching.h"
#include "graph/graph.h"
#include "sim/cluster.h"

namespace ampc::core {

// ---------------------------------------------------------------------------
// 2-approximate minimum vertex cover.
// ---------------------------------------------------------------------------

struct VertexCoverResult {
  /// in_cover[v] == 1 iff v belongs to the cover.
  std::vector<uint8_t> in_cover;
  /// Number of cover vertices (== 2 * matching size).
  int64_t size = 0;
};

/// 2-approximate minimum vertex cover via AmpcMatching (Corollary 4.1).
VertexCoverResult AmpcVertexCover(sim::Cluster& cluster,
                                  const graph::Graph& g,
                                  const MatchingOptions& options = {});

// ---------------------------------------------------------------------------
// (2 + O(eps))-approximate maximum weight matching.
// ---------------------------------------------------------------------------

struct WeightMatchingOptions {
  /// Rounding parameter; the approximation factor is
  /// 2(1 + epsilon) / (1 - epsilon/2).
  double epsilon = 0.2;
  /// Passed through to the underlying AmpcMatching call (edge_buckets is
  /// overwritten by the reduction).
  MatchingOptions matching;
};

struct WeightMatchingResult {
  /// partner[v] = matched neighbor, or graph::kInvalidNode.
  std::vector<graph::NodeId> partner;
  /// Total true (un-rounded) weight of the matching.
  graph::Weight total_weight = 0;
  /// Number of distinct weight classes used as buckets.
  int64_t num_buckets = 0;
};

/// (2 + O(eps))-approximate maximum weight matching in the same rounds as
/// one AmpcMatching call. Edges with non-positive weight are ignored
/// (they never help a maximum weight matching).
WeightMatchingResult AmpcApproxMaxWeightMatching(
    sim::Cluster& cluster, const graph::WeightedEdgeList& list,
    const WeightMatchingOptions& options = {});

// ---------------------------------------------------------------------------
// (1 + eps)-approximate maximum cardinality matching.
// ---------------------------------------------------------------------------

struct ApproxMatchingOptions {
  /// Target quality: the result has size >= |M*| / (1 + epsilon).
  double epsilon = 0.5;
  /// Passed to the initial AmpcMatching call.
  MatchingOptions matching;
  /// Safety cap on augmentation phases (each phase either augments at
  /// least one path or proves none of the current length exist, so the
  /// natural bound is n/2; the cap guards against bugs, not inputs).
  int max_augment_phases = 1 << 20;
};

struct ApproxMatchingResult {
  /// partner[v] = matched neighbor, or graph::kInvalidNode.
  std::vector<graph::NodeId> partner;
  /// Matching size (number of matched edges).
  int64_t size = 0;
  /// Longest augmenting path length searched (2*ceil(1/eps) - 1).
  int max_path_length = 0;
  /// Number of augment-search phases run (cheap rounds).
  int augment_phases = 0;
  /// Number of augmenting paths applied in total.
  int64_t paths_applied = 0;
};

/// (1 + eps)-approximate maximum matching via short augmenting paths over
/// the DHT (Corollary 4.1). Exact for eps < 2/n (the search length then
/// covers every possible augmenting path).
ApproxMatchingResult AmpcApproxMaximumMatching(
    sim::Cluster& cluster, const graph::Graph& g,
    const ApproxMatchingOptions& options = {});

}  // namespace ampc::core
