// AMPC k-core decomposition — the Section 5.7 "Sub-structure Extraction"
// extension study ("It would be interesting to study whether we can solve
// these problems [in] O(1) rounds in the AMPC model").
//
// Both engines run the h-index fixpoint of Lü et al. (Nature Comm. 2016):
// start every vertex at its degree and repeatedly replace each value with
// the h-index of its neighbors' values; the fixpoint is exactly the
// coreness. The iteration counts are identical by construction — what
// changes is the cost of a round:
//
//   * AmpcKCore stages the adjacency in the DHT once (1 shuffle), then
//     every iteration is a cheap KV-write of the current values plus a
//     map round whose lookups hit the DHT — zero further shuffles.
//   * baselines::MpcKCore (see baselines/mpc_kcore.h) must join values
//     onto adjacency with a GroupByKey every iteration — one shuffle per
//     iteration, the same pattern as the paper's MPC MIS/MM baselines.
//
// The fixpoint needs at most O(n) iterations (tight on paths); on the
// skewed graphs of the evaluation it converges in a few dozen.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "sim/cluster.h"

namespace ampc::core {

struct KCoreOptions {
  /// Safety cap on h-index iterations (n + 1 always suffices).
  int max_iterations = 1 << 20;
};

struct KCoreResult {
  /// coreness[v] = largest k such that v is in the k-core.
  std::vector<int32_t> coreness;
  /// h-index iterations until fixpoint.
  int iterations = 0;
};

/// Exact core decomposition on the AMPC cluster.
KCoreResult AmpcKCore(sim::Cluster& cluster, const graph::Graph& g,
                      const KCoreOptions& options = {});

/// Computes the h-index of `values`: the largest h with at least h
/// entries >= h. Exposed for tests and the MPC baseline.
int32_t HIndex(std::vector<int32_t>& values);

}  // namespace ampc::core
