#include "core/approx.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <unordered_set>

#include "common/logging.h"
#include "common/timer.h"
#include "kv/sharded_store.h"

namespace ampc::core {
namespace {

using graph::EdgeList;
using graph::Graph;
using graph::kInvalidNode;
using graph::NodeId;
using graph::Weight;
using graph::WeightedEdge;
using graph::WeightedEdgeList;

using AdjStore = kv::ShardedStore<std::vector<NodeId>>;

// Stages the plain id-sorted adjacency of `g` into a fresh DHT store:
// one shuffle (building the lists) plus one cheap KV-write round.
std::unique_ptr<AdjStore> StageAdjacency(sim::Cluster& cluster,
                                         const Graph& g,
                                         const std::string& phase) {
  const int64_t n = g.num_nodes();
  WallTimer timer;
  int64_t bytes = 0;
  for (NodeId v = 0; v < n; ++v) bytes += g.AdjacencyBytes(v);
  cluster.AccountShuffle(phase, bytes, timer.Seconds());

  auto store = std::make_unique<AdjStore>(
      cluster.MakeStore<std::vector<NodeId>>(n));
  cluster.RunKvWritePhase("KV-Write", *store, n, [&](int64_t v) {
    const auto span = g.neighbors(static_cast<NodeId>(v));
    return std::vector<NodeId>(span.begin(), span.end());
  });
  return store;
}

// ---------------------------------------------------------------------------
// Bounded alternating-path DFS (the augmenting-path query process).
// ---------------------------------------------------------------------------

// One augmenting path: an odd-length sequence of vertices alternating
// unmatched/matched edges, both endpoints free.
using Path = std::vector<NodeId>;

class AugmentSearch {
 public:
  AugmentSearch(sim::MachineContext& ctx, const AdjStore& store,
                const std::vector<NodeId>& partner, int max_vertices)
      : ctx_(ctx), store_(store), partner_(partner),
        max_vertices_(max_vertices) {}

  // Exhaustive DFS for a simple alternating path from free vertex `f` to
  // any other free vertex, with at most max_vertices_ vertices. Returns
  // true and fills `out` on success.
  bool FindPath(NodeId f, Path* out) {
    path_.clear();
    path_.push_back(f);
    on_path_.clear();
    on_path_.insert(f);
    if (!Extend()) return false;
    *out = path_;
    return true;
  }

 private:
  // Invariant: path_ holds an alternating walk starting at the free root
  // whose last vertex is matched (or the root itself); the next edge to
  // add must be unmatched.
  bool Extend() {
    const NodeId v = path_.back();
    const std::vector<NodeId>* adj = ctx_.Lookup(store_, v);
    if (adj == nullptr) return false;
    for (const NodeId u : *adj) {
      if (on_path_.contains(u)) continue;
      if (partner_[v] == u) continue;  // must leave via an unmatched edge
      if (partner_[u] == kInvalidNode) {
        path_.push_back(u);  // free endpoint: augmenting path complete
        return true;
      }
      // u is matched; the alternation forces continuing through its
      // partner. The partner must be fresh and the path must have room
      // for two more vertices plus a future endpoint.
      const NodeId w = partner_[u];
      if (on_path_.contains(w)) continue;
      if (static_cast<int>(path_.size()) + 2 >= max_vertices_) continue;
      path_.push_back(u);
      path_.push_back(w);
      on_path_.insert(u);
      on_path_.insert(w);
      if (Extend()) return true;
      on_path_.erase(u);
      on_path_.erase(w);
      path_.pop_back();
      path_.pop_back();
    }
    return false;
  }

  sim::MachineContext& ctx_;
  const AdjStore& store_;
  const std::vector<NodeId>& partner_;
  const int max_vertices_;
  Path path_;
  std::unordered_set<NodeId> on_path_;
};

// Flips matched status along `path` (odd edge count, free endpoints).
void ApplyPath(const Path& path, std::vector<NodeId>& partner) {
  AMPC_CHECK_EQ(path.size() % 2, 0u) << "augmenting path must be odd-length";
  for (size_t i = 0; i + 1 < path.size(); i += 2) {
    partner[path[i]] = path[i + 1];
    partner[path[i + 1]] = path[i];
  }
}

// True when `path` is still augmenting under the current matching: all
// vertices distinct (guaranteed by the search), endpoints free, interior
// pairs still matched to each other.
bool StillApplicable(const Path& path, const std::vector<NodeId>& partner) {
  if (partner[path.front()] != kInvalidNode) return false;
  if (partner[path.back()] != kInvalidNode) return false;
  for (size_t i = 1; i + 1 < path.size(); i += 2) {
    if (partner[path[i]] != path[i + 1]) return false;
  }
  return true;
}

}  // namespace

VertexCoverResult AmpcVertexCover(sim::Cluster& cluster, const Graph& g,
                                  const MatchingOptions& options) {
  const MatchingResult matching = AmpcMatching(cluster, g, options);
  VertexCoverResult result;
  result.in_cover.assign(matching.partner.size(), 0);
  for (size_t v = 0; v < matching.partner.size(); ++v) {
    if (matching.partner[v] != kInvalidNode) {
      result.in_cover[v] = 1;
      ++result.size;
    }
  }
  // Publishing the indicator is a map over vertices (cheap round).
  cluster.AccountMapRound("EmitCover");
  return result;
}

WeightMatchingResult AmpcApproxMaxWeightMatching(
    sim::Cluster& cluster, const WeightedEdgeList& list,
    const WeightMatchingOptions& options) {
  AMPC_CHECK_GT(options.epsilon, 0.0);
  const int64_t n = list.num_nodes;

  // Pass 1 (map over edges): find w_max among positive-weight edges.
  Weight w_max = 0;
  for (const WeightedEdge& e : list.edges) {
    if (e.u != e.v) w_max = std::max(w_max, e.w);
  }
  cluster.AccountMapRound("WeightScan");

  WeightMatchingResult result;
  result.partner.assign(n, kInvalidNode);
  if (w_max <= 0) return result;  // no positive edge: empty matching

  // Pass 2: drop edges below the significance floor, round the rest down
  // to powers of (1 + eps), and record the class as the edge's bucket.
  // Heavier class => lower bucket => earlier in the permutation.
  const Weight floor_w = options.epsilon * w_max / static_cast<Weight>(n);
  const double log_base = std::log1p(options.epsilon);
  EdgeList kept;
  kept.num_nodes = n;
  EdgeBucketMap buckets;
  std::unordered_map<uint64_t, Weight> weight_of;
  uint32_t max_bucket = 0;
  for (const WeightedEdge& e : list.edges) {
    if (e.u == e.v || e.w <= 0 || e.w < floor_w) continue;
    const uint64_t key = EdgeKey(e.u, e.v);
    auto [it, inserted] = weight_of.emplace(key, e.w);
    if (!inserted) {
      // Parallel edges collapse to the heaviest copy.
      if (e.w <= it->second) continue;
      it->second = e.w;
    } else {
      kept.edges.push_back(graph::Edge{e.u, e.v});
    }
    const uint32_t bucket =
        static_cast<uint32_t>(std::floor(std::log(w_max / e.w) / log_base));
    buckets[key] = bucket;
    max_bucket = std::max(max_bucket, bucket);
  }
  cluster.AccountMapRound("WeightBucket");
  result.num_buckets = kept.edges.empty() ? 0 : max_bucket + 1;
  if (kept.edges.empty()) return result;

  const Graph g = graph::BuildGraph(kept);
  MatchingOptions matching_options = options.matching;
  matching_options.edge_buckets = &buckets;
  const MatchingResult matching = AmpcMatching(cluster, g, matching_options);

  result.partner = matching.partner;
  for (NodeId v = 0; v < n; ++v) {
    const NodeId p = result.partner[v];
    if (p != kInvalidNode && v < p) {
      result.total_weight += weight_of.at(EdgeKey(v, p));
    }
  }
  return result;
}

ApproxMatchingResult AmpcApproxMaximumMatching(
    sim::Cluster& cluster, const Graph& g,
    const ApproxMatchingOptions& options) {
  AMPC_CHECK_GT(options.epsilon, 0.0);
  const int64_t n = g.num_nodes();
  const int k = static_cast<int>(std::ceil(1.0 / options.epsilon));

  ApproxMatchingResult result;
  result.max_path_length = 2 * k - 1;

  // Phase 0: a maximal matching (eliminates all length-1 paths).
  MatchingResult initial = AmpcMatching(cluster, g, options.matching);
  result.partner = std::move(initial.partner);

  if (k <= 1) {
    for (NodeId v = 0; v < n; ++v) {
      result.size += result.partner[v] != kInvalidNode;
    }
    result.size /= 2;
    return result;
  }

  std::unique_ptr<AdjStore> store =
      StageAdjacency(cluster, g, "WriteGraph");

  // Eliminate augmenting paths of length <= 2j - 1 for j = 2..k. The
  // Hopcroft–Karp lemma needs only the final length, but clearing short
  // paths first keeps each exhaustive DFS cheap.
  for (int j = 2; j <= k; ++j) {
    const int max_vertices = 2 * j;  // path of 2j vertices = 2j - 1 edges
    for (;;) {
      AMPC_CHECK_LT(result.augment_phases, options.max_augment_phases)
          << "augmentation did not converge";
      ++result.augment_phases;

      // Search phase: every free vertex hunts for one augmenting path.
      std::mutex mu;
      std::vector<Path> found;
      cluster.RunMapPhase(
          "AugmentSearch", n, [&](int64_t item, sim::MachineContext& ctx) {
            const NodeId v = static_cast<NodeId>(item);
            if (result.partner[v] != kInvalidNode) return;
            AugmentSearch search(ctx, *store, result.partner, max_vertices);
            Path path;
            if (search.FindPath(v, &path)) {
              std::lock_guard<std::mutex> lock(mu);
              found.push_back(std::move(path));
            }
          });
      if (found.empty()) break;

      // Commit phase (one shuffle): apply a maximal vertex-disjoint
      // subset. Candidates are ordered deterministically so the result is
      // independent of search scheduling.
      std::sort(found.begin(), found.end());
      int64_t bytes = 0;
      int64_t applied = 0;
      for (const Path& path : found) {
        bytes += static_cast<int64_t>(path.size() * sizeof(NodeId));
        if (!StillApplicable(path, result.partner)) continue;
        ApplyPath(path, result.partner);
        ++applied;
      }
      cluster.AccountShuffle("CommitPaths", bytes);
      result.paths_applied += applied;
    }
  }

  for (NodeId v = 0; v < n; ++v) {
    result.size += result.partner[v] != kInvalidNode;
  }
  result.size /= 2;
  return result;
}

}  // namespace ampc::core
