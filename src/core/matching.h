// AMPC Maximal Matching (paper Section 4, Theorem 2; implementation
// Section 5.4).
//
// Both variants compute the lexicographically-first maximal matching over
// the random edge permutation induced by core::EdgeRank, so their outputs
// equal seq::GreedyMaximalMatching for the same seed.
//
//  * AmpcMatching — Theorem 2 part 2: O(1) rounds. One shuffle builds the
//    rank-sorted adjacency (PermuteGraph), one cheap round writes it to
//    the DHT, then vertex-rooted truncated query processes (the paper's
//    IsInMM) resolve every vertex. Per-machine caches (kv::QueryCache
//    instances from Cluster::MakeMachineCaches) store, per vertex,
//    either its matched partner or the highest-rank neighbor up to which
//    all incident edges are known to be out of the matching — exactly the
//    per-vertex cache described in Section 5.4.
//
//  * AmpcMatchingSampled — Theorem 2 part 1 / Algorithm 4: O(log log n)
//    rounds. Iteration i matches the greedy matching of the subgraph H_i
//    holding the globally lowest-ranked edges (rank <= Delta_i^{-1/2}),
//    then deletes matched vertices; Proposition 4.3 drives the maximum
//    degree doubly-exponentially down.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "graph/graph.h"
#include "seq/greedy.h"
#include "sim/cluster.h"

namespace ampc::core {

/// Maps a packed undirected edge key (EdgeKey below) to a bucket. Lower
/// buckets precede all higher buckets in the matching permutation.
using EdgeBucketMap = std::unordered_map<uint64_t, uint32_t>;

/// Packs endpoints into the EdgeBucketMap key (order-insensitive).
inline uint64_t EdgeKey(graph::NodeId u, graph::NodeId v) {
  const graph::NodeId lo = u < v ? u : v;
  const graph::NodeId hi = u < v ? v : u;
  return (static_cast<uint64_t>(lo) << 32) | hi;
}

struct MatchingOptions {
  uint64_t seed = 42;
  /// Per-vertex query budget (the n^epsilon truncation of Lemma 4.7).
  /// 0 disables truncation — the practical single-pass configuration of
  /// Section 5.4.
  int64_t max_queries_per_vertex = 0;
  /// Safety cap on query-process repetitions (Lemma 4.7 needs O(1/eps)).
  int max_phases = 64;
  /// Optional major sort key for the edge permutation: every edge in a
  /// lower bucket precedes every edge in a higher bucket; the random rank
  /// breaks ties within a bucket. Edges missing from the map default to
  /// bucket 0. The Corollary 4.1 weighted-matching reduction supplies
  /// descending weight classes here. Must outlive the call.
  const EdgeBucketMap* edge_buckets = nullptr;
};

struct MatchingResult {
  /// partner[v] = matched neighbor, or graph::kInvalidNode.
  std::vector<graph::NodeId> partner;
  /// Number of IsInMM phases executed (1 unless truncation kicked in).
  int phases = 0;
};

/// O(1)-round maximal matching (Theorem 2 part 2).
MatchingResult AmpcMatching(sim::Cluster& cluster, const graph::Graph& g,
                            const MatchingOptions& options = {});

/// O(log log n)-round edge-sampling maximal matching (Algorithm 4).
MatchingResult AmpcMatchingSampled(sim::Cluster& cluster,
                                   const graph::Graph& g,
                                   const MatchingOptions& options = {});

/// Converts a partner array into edge ids of `list` (for comparison with
/// seq::GreedyMaximalMatching and validity checks).
seq::MatchingResult ToSeqMatching(const graph::EdgeList& list,
                                  const std::vector<graph::NodeId>& partner);

}  // namespace ampc::core
