// Single-linkage hierarchical clustering — the MSF application the paper
// highlights in Section 1: "one can use this algorithm together with a
// simple sorting step, and our connectivity algorithm to find any desired
// level of a single-linkage hierarchical clustering" [70].
//
// The dendrogram of single-linkage clustering is exactly the minimum
// spanning forest with its edges sorted by weight: cutting the dendrogram
// at distance t yields the connected components of the MSF edges with
// weight <= t. AmpcSingleLinkage runs the constant-round AMPC MSF and the
// sorting step; flat cuts are served either locally (CutAtThreshold /
// CutToClusters, union-find over the merges) or with the paper's recipe
// (AmpcCutAtThreshold: the AMPC connectivity algorithm over the filtered
// forest).
#pragma once

#include <cstdint>
#include <vector>

#include "core/msf.h"
#include "graph/graph.h"
#include "sim/cluster.h"

namespace ampc::core {

/// One dendrogram merge: at distance `weight`, the clusters currently
/// containing u and v fuse. `edge` is the defining input edge id.
struct Merge {
  graph::NodeId u = 0;
  graph::NodeId v = 0;
  graph::Weight weight = 0;
  graph::EdgeId edge = 0;

  bool operator==(const Merge&) const = default;
};

/// The single-linkage dendrogram of a weighted graph.
class Dendrogram {
 public:
  Dendrogram(int64_t num_nodes, std::vector<Merge> merges);

  int64_t num_nodes() const { return num_nodes_; }

  /// Merges in ascending (weight, edge id) order; there are
  /// num_nodes() - num_components() of them.
  const std::vector<Merge>& merges() const { return merges_; }

  /// Clusters remaining when every merge is applied (= connected
  /// components of the input graph).
  int64_t num_components() const {
    return num_nodes_ - static_cast<int64_t>(merges_.size());
  }

  /// Flat clustering at distance threshold `t`: applies every merge with
  /// weight <= t. Labels are canonical: each vertex is labeled with the
  /// smallest vertex id in its cluster.
  std::vector<graph::NodeId> CutAtThreshold(graph::Weight t) const;

  /// Flat clustering with exactly `k` clusters (requires
  /// num_components() <= k <= num_nodes()): applies the cheapest
  /// num_nodes() - k merges. Canonical labels as above.
  std::vector<graph::NodeId> CutToClusters(int64_t k) const;

 private:
  int64_t num_nodes_;
  std::vector<Merge> merges_;
};

/// Number of distinct labels in a flat clustering.
int64_t CountClusters(const std::vector<graph::NodeId>& labels);

struct ClusteringOptions {
  MsfOptions msf;
};

/// Builds the single-linkage dendrogram with the AMPC MSF algorithm plus
/// one sorting shuffle. O(1) AMPC rounds end to end.
Dendrogram AmpcSingleLinkage(sim::Cluster& cluster,
                             const graph::WeightedEdgeList& list,
                             const ClusteringOptions& options = {});

/// The paper's recipe for one flat level: AMPC connectivity over the
/// dendrogram merges with weight <= t. Produces the same canonical labels
/// as Dendrogram::CutAtThreshold, while exercising the distributed path.
std::vector<graph::NodeId> AmpcCutAtThreshold(sim::Cluster& cluster,
                                              const Dendrogram& dendrogram,
                                              graph::Weight t,
                                              const MsfOptions& options = {});

}  // namespace ampc::core
