#include "core/priorities.h"

#include "common/parallel.h"

namespace ampc::core {

std::vector<uint64_t> AllVertexRanks(int64_t num_nodes, uint64_t seed) {
  std::vector<uint64_t> ranks(num_nodes);
  for (int64_t v = 0; v < num_nodes; ++v) {
    ranks[v] = VertexRank(static_cast<graph::NodeId>(v), seed);
  }
  return ranks;
}

std::vector<uint64_t> AllVertexRanks(ThreadPool& pool, int64_t num_nodes,
                                     uint64_t seed) {
  return ParallelTabulate<uint64_t>(pool, num_nodes, [seed](int64_t v) {
    return VertexRank(static_cast<graph::NodeId>(v), seed);
  });
}

std::vector<uint64_t> AllEdgeRanks(const graph::EdgeList& list,
                                   uint64_t seed) {
  std::vector<uint64_t> ranks(list.edges.size());
  for (size_t i = 0; i < list.edges.size(); ++i) {
    ranks[i] = EdgeRank(list.edges[i].u, list.edges[i].v, seed);
  }
  return ranks;
}

std::vector<uint64_t> AllEdgeRanks(ThreadPool& pool,
                                   const graph::EdgeList& list,
                                   uint64_t seed) {
  return ParallelTabulate<uint64_t>(
      pool, static_cast<int64_t>(list.edges.size()), [&](int64_t i) {
        return EdgeRank(list.edges[i].u, list.edges[i].v, seed);
      });
}

}  // namespace ampc::core
