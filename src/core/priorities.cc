#include "core/priorities.h"

namespace ampc::core {

std::vector<uint64_t> AllVertexRanks(int64_t num_nodes, uint64_t seed) {
  std::vector<uint64_t> ranks(num_nodes);
  for (int64_t v = 0; v < num_nodes; ++v) {
    ranks[v] = VertexRank(static_cast<graph::NodeId>(v), seed);
  }
  return ranks;
}

std::vector<uint64_t> AllEdgeRanks(const graph::EdgeList& list,
                                   uint64_t seed) {
  std::vector<uint64_t> ranks(list.edges.size());
  for (size_t i = 0; i < list.edges.size(); ++i) {
    ranks[i] = EdgeRank(list.edges[i].u, list.edges[i].v, seed);
  }
  return ranks;
}

}  // namespace ampc::core
