// Shared random priorities. Every algorithm — AMPC, MPC baseline, and
// sequential oracle — derives vertex/edge ranks from these functions, so
// fixing the seed fixes the permutation and all three compute identical
// greedy solutions (the comparison methodology of Section 5.3).
#pragma once

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "common/thread_pool.h"
#include "graph/graph.h"

namespace ampc::core {

/// Rank of a vertex under `seed`; lower rank = earlier in the permutation.
inline uint64_t VertexRank(graph::NodeId v, uint64_t seed) {
  return Hash64(v, seed ^ 0x7665727478ULL);  // "vertx"
}

/// Rank of an undirected edge; symmetric in endpoints.
inline uint64_t EdgeRank(graph::NodeId u, graph::NodeId v, uint64_t seed) {
  return HashEdge(u, v, seed ^ 0x65646765ULL);  // "edge"
}

/// Materializes all vertex ranks.
std::vector<uint64_t> AllVertexRanks(int64_t num_nodes, uint64_t seed);

/// Parallel variant: tabulates the ranks on `pool`. Output is identical
/// to the serial overload (ranks are pure hashes of (id, seed)).
std::vector<uint64_t> AllVertexRanks(ThreadPool& pool, int64_t num_nodes,
                                     uint64_t seed);

/// Materializes ranks for every edge of a list (indexed by position).
std::vector<uint64_t> AllEdgeRanks(const graph::EdgeList& list,
                                   uint64_t seed);

/// Parallel variant of AllEdgeRanks; same output as the serial overload.
std::vector<uint64_t> AllEdgeRanks(ThreadPool& pool,
                                   const graph::EdgeList& list,
                                   uint64_t seed);

/// True if a precedes b in the vertex permutation (ties by id).
inline bool VertexBefore(graph::NodeId a, graph::NodeId b, uint64_t seed) {
  const uint64_t ra = VertexRank(a, seed);
  const uint64_t rb = VertexRank(b, seed);
  if (ra != rb) return ra < rb;
  return a < b;
}

}  // namespace ampc::core
