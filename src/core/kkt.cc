#include "core/kkt.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "common/logging.h"
#include "common/random.h"
#include "common/timer.h"
#include "trees/path_max.h"
#include "trees/rooted_forest.h"

namespace ampc::core {

using graph::EdgeId;
using graph::NodeId;
using graph::WeightedEdge;
using graph::WeightedEdgeList;

std::vector<uint8_t> FindLightEdges(
    sim::Cluster& cluster, const WeightedEdgeList& list,
    const std::vector<EdgeId>& forest_edge_ids) {
  // Assemble the forest's edges.
  std::unordered_set<EdgeId> in_forest(forest_edge_ids.begin(),
                                       forest_edge_ids.end());
  std::vector<WeightedEdge> forest_edges;
  forest_edges.reserve(forest_edge_ids.size());
  for (const WeightedEdge& e : list.edges) {
    if (in_forest.contains(e.id)) forest_edges.push_back(e);
  }
  AMPC_CHECK_EQ(forest_edges.size(), forest_edge_ids.size())
      << "forest ids must reference edges of the list";

  // Algorithm 5 lines 1-9: components, rooting, levels, Euler tour + RMQ
  // (LCA), heavy-light decomposition + per-path RMQ. These preprocessing
  // steps are O(1) AMPC rounds (Appendix B); we charge two shuffles of
  // the forest's size for them.
  WallTimer build_timer;
  trees::RootedForest forest =
      trees::BuildRootedForest(list.num_nodes, forest_edges);
  trees::PathMaxOracle oracle(forest);
  // Per-machine charging: forest edges land on their child endpoint's
  // shard owner, per-vertex tour/level records on the vertex's owner.
  const std::vector<int64_t> forest_bytes = cluster.AttributeShardedBytes(
      static_cast<int64_t>(forest_edges.size()),
      [&](int64_t i) {
        return cluster.MachineOf(forest_edges[i].u, list.num_nodes);
      },
      [](int64_t) { return static_cast<int64_t>(sizeof(WeightedEdge)); });
  cluster.AccountShardedShuffle("FLightBuild", forest_bytes,
                                build_timer.Seconds() / 2);
  const std::vector<int64_t> vertex_bytes = cluster.AttributeShardedBytes(
      list.num_nodes,
      [&](int64_t v) { return cluster.MachineOf(v, list.num_nodes); },
      [](int64_t) { return static_cast<int64_t>(sizeof(NodeId)); });
  cluster.AccountShardedShuffle("FLightBuild", vertex_bytes,
                                build_timer.Seconds() / 2);

  // Line 10-11: classify every edge with two tree queries.
  std::vector<uint8_t> light(list.edges.size(), 0);
  cluster.RunMapPhase(
      "FLightQuery", static_cast<int64_t>(list.edges.size()),
      [&](int64_t item, sim::MachineContext&) {
        const WeightedEdge& e = list.edges[item];
        if (e.u == e.v) return;  // self-loop: never light
        if (!forest.SameTree(e.u, e.v)) {
          light[item] = 1;  // w_F = infinity (Definition 3.7)
          return;
        }
        auto max_edge = oracle.MaxEdgeOnPath(e.u, e.v);
        if (!max_edge.has_value()) return;  // e.u == e.v handled above
        // Light iff (w_e, id_e) <= (w_max, id_max) in the total order.
        const bool heavier_than_path =
            (e.w != max_edge->w) ? (e.w > max_edge->w)
                                 : (e.id > max_edge->id);
        light[item] = heavier_than_path ? 0 : 1;
      });
  return light;
}

KktResult AmpcMsfKkt(sim::Cluster& cluster, const WeightedEdgeList& list,
                     const KktOptions& options) {
  KktResult result;
  const int64_t n = list.num_nodes;
  double p = options.sample_probability;
  if (p <= 0) {
    p = 1.0 / std::max(1.0, std::log2(static_cast<double>(std::max<int64_t>(
                                2, n))));
  }

  // Line 1: sample each edge independently with probability p.
  const uint64_t sample_seed = options.msf.seed ^ 0x6b6b74ULL;  // "kkt"
  WeightedEdgeList sampled;
  sampled.num_nodes = n;
  for (const WeightedEdge& e : list.edges) {
    if (ToUnitDouble(Hash64(e.id, sample_seed)) < p) {
      sampled.edges.push_back(e);
    }
  }
  result.sampled_edges = static_cast<int64_t>(sampled.edges.size());
  // Sampled edges scatter to their id's shard owner.
  const std::vector<int64_t> sample_bytes = cluster.AttributeShardedBytes(
      static_cast<int64_t>(sampled.edges.size()),
      [&](int64_t i) {
        return cluster.MachineOf(sampled.edges[i].id,
                                 static_cast<int64_t>(list.edges.size()));
      },
      [](int64_t) { return static_cast<int64_t>(sizeof(WeightedEdge)); });
  cluster.AccountShardedShuffle("KKT-Sample", sample_bytes);

  // Line 2: F = MSF of the sample.
  MsfResult f = AmpcMsf(cluster, sampled, options.msf);

  // Line 3: E_L = F-light edges of G (F's own edges are light and are
  // included, so MSF(F ∪ E_L) = MSF(E_L)).
  std::vector<uint8_t> light = FindLightEdges(cluster, list, f.edges);
  WeightedEdgeList survivors;
  survivors.num_nodes = n;
  for (size_t i = 0; i < list.edges.size(); ++i) {
    if (light[i]) survivors.edges.push_back(list.edges[i]);
  }
  result.light_edges = static_cast<int64_t>(survivors.edges.size());

  // Line 4: the final MSF.
  MsfResult final_msf = AmpcMsf(cluster, survivors, options.msf);
  result.msf_edges = std::move(final_msf.edges);
  return result;
}

}  // namespace ampc::core
