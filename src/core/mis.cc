#include "core/mis.h"

#include <algorithm>
#include <atomic>
#include <memory>

#include "common/timer.h"
#include "core/priorities.h"
#include "kv/sharded_store.h"

namespace ampc::core {
namespace {

using graph::Graph;
using graph::NodeId;

// Three-valued query state (paper Section 5.3: "this table stores a
// three-valued state reporting whether the status of this vertex is
// either Unknown, InMIS or NotInMIS").
enum MisState : uint8_t { kUnknown = 0, kInMis = 1, kNotInMis = 2 };

// Per-machine caches: caches[machine][vertex].
using CacheArray = std::unique_ptr<std::atomic<uint8_t>[]>;

// Resumable, iterative version of the IsInMIS recursion of Figure 1: v
// is in the MIS iff none of its preceding neighbors is. An explicit
// stack replaces recursion because descending-rank chains can be
// Theta(n) long, and the resolution is a state machine so a worker can
// run many of them in lockstep: Advance runs until the resolution either
// needs a remote adjacency (`pending` set — exactly where the scalar
// client issued its synchronous Lookup) or finishes (`done` set), and
// each adaptive step fetches every active resolution's pending adjacency
// with one LookupMany batch.
struct MisResolveState {
  struct Frame {
    NodeId v;
    const std::vector<NodeId>* adj;  // preceding neighbors, ascending rank
    size_t idx;
    bool awaiting;  // a child frame is computing adj[idx]'s state
  };

  int64_t item = 0;
  std::vector<Frame> stack;
  uint8_t last = kUnknown;
  NodeId pending = 0;
  bool done = false;
  std::atomic<uint8_t>* cache = nullptr;

  uint8_t CacheGet(NodeId x) const {
    return cache == nullptr ? static_cast<uint8_t>(kUnknown)
                            : cache[x].load(std::memory_order_acquire);
  }
  void CacheSet(NodeId x, uint8_t state) {
    if (cache != nullptr) cache[x].store(state, std::memory_order_release);
  }

  // Runs the resolution until it terminates (done = true, result in
  // `last`) or needs the adjacency of `pending`.
  void Advance(sim::MachineContext& ctx) {
    while (!stack.empty()) {
      Frame& f = stack.back();
      if (f.awaiting) {
        f.awaiting = false;
        if (last == kInMis) {
          CacheSet(f.v, kNotInMis);
          last = kNotInMis;
          stack.pop_back();
          continue;
        }
        ++f.idx;  // child resolved NotInMIS; keep scanning
      }
      bool needs_lookup = false;
      uint8_t decided = kUnknown;
      while (f.adj != nullptr && f.idx < f.adj->size()) {
        const NodeId u = (*f.adj)[f.idx];
        const uint8_t su = CacheGet(u);
        if (su == kInMis) {
          ctx.CountCacheHit();
          decided = kNotInMis;
          break;
        }
        if (su == kNotInMis) {
          ctx.CountCacheHit();
          ++f.idx;
          continue;
        }
        ctx.CountCacheMiss();
        f.awaiting = true;
        pending = u;
        needs_lookup = true;
        break;
      }
      if (needs_lookup) return;
      if (decided == kUnknown) decided = kInMis;  // no preceding MIS nbr
      CacheSet(stack.back().v, decided);
      last = decided;
      stack.pop_back();
    }
    done = true;
  }

  // Feeds the fetched adjacency of `pending` back in and keeps going.
  void Resume(const std::vector<NodeId>* adj, sim::MachineContext& ctx) {
    stack.push_back(Frame{pending, adj, 0, false});
    Advance(ctx);
  }
};

}  // namespace

MisResult AmpcMis(sim::Cluster& cluster, const Graph& g, uint64_t seed) {
  const int64_t n = g.num_nodes();

  // Phase 1 — DirectGraph (the algorithm's single shuffle): keep only
  // neighbors preceding v in the permutation, sorted by ascending rank.
  WallTimer direct_timer;
  std::vector<std::vector<NodeId>> directed(n);
  std::atomic<int64_t> shuffle_bytes{0};
  ParallelForChunked(
      cluster.pool(), 0, n, 512, [&](int64_t lo, int64_t hi) {
        int64_t bytes = 0;
        for (int64_t vi = lo; vi < hi; ++vi) {
          const NodeId v = static_cast<NodeId>(vi);
          std::vector<NodeId>& out = directed[vi];
          for (NodeId u : g.neighbors(v)) {
            if (VertexBefore(u, v, seed)) out.push_back(u);
          }
          std::sort(out.begin(), out.end(), [&](NodeId a, NodeId b) {
            return VertexBefore(a, b, seed);
          });
          bytes += kv::kKeyBytes + kv::KvByteSize(out);
        }
        shuffle_bytes.fetch_add(bytes, std::memory_order_relaxed);
      });
  cluster.AccountShuffle("DirectGraph", shuffle_bytes.load(),
                         direct_timer.Seconds());

  // Phase 2 — write the directed graph to the key-value store.
  kv::ShardedStore<std::vector<NodeId>> store =
      cluster.MakeStore<std::vector<NodeId>>(n);
  cluster.RunKvWritePhase("KV-Write", store, n, [&](int64_t v) {
    return std::move(directed[v]);
  });
  directed.clear();
  directed.shrink_to_fit();

  // Phase 3 — IsInMIS over all vertices.
  const bool caching = cluster.config().caching;
  const int num_machines = cluster.config().num_machines;
  std::vector<CacheArray> caches;
  if (caching) {
    caches.resize(num_machines);
    for (int m = 0; m < num_machines; ++m) {
      caches[m] = std::make_unique<std::atomic<uint8_t>[]>(n);
      for (int64_t i = 0; i < n; ++i) {
        caches[m][i].store(kUnknown, std::memory_order_relaxed);
      }
    }
  }

  MisResult result;
  result.in_mis.assign(n, 0);
  cluster.RunBatchMapPhase(
      "IsInMIS", n,
      [&](std::span<const int64_t> items, sim::MachineContext& ctx) {
        std::atomic<uint8_t>* cache =
            caching ? caches[ctx.machine_id()].get() : nullptr;
        std::vector<MisResolveState> states;
        states.reserve(items.size());
        for (const int64_t item : items) {
          const NodeId root = static_cast<NodeId>(item);
          MisResolveState s;
          s.item = item;
          s.cache = cache;
          if (const uint8_t cached = s.CacheGet(root); cached != kUnknown) {
            ctx.CountCacheHit();
            s.last = cached;
            s.done = true;
          } else {
            // The root's own record is machine-local ParDo input; not
            // charged.
            s.stack.push_back(MisResolveState::Frame{
                root, ctx.LookupLocal(store, root), 0, false});
            s.Advance(ctx);
          }
          states.push_back(std::move(s));
        }
        sim::DriveLookupLockstep(
            ctx, store, states,
            [](const MisResolveState& s) { return s.done; },
            [](const MisResolveState& s) {
              return static_cast<uint64_t>(s.pending);
            },
            [&ctx](MisResolveState& s, const std::vector<NodeId>* adj) {
              s.Resume(adj, ctx);
            });
        for (const MisResolveState& s : states) {
          result.in_mis[s.item] = (s.last == kInMis) ? 1 : 0;
        }
      });
  return result;
}

}  // namespace ampc::core
