#include "core/mis.h"

#include <algorithm>
#include <atomic>

#include "common/timer.h"
#include "core/priorities.h"
#include "kv/query_cache.h"
#include "kv/sharded_store.h"

namespace ampc::core {
namespace {

using graph::Graph;
using graph::NodeId;

// Three-valued query state (paper Section 5.3: "this table stores a
// three-valued state reporting whether the status of this vertex is
// either Unknown, InMIS or NotInMIS"). The states live in the shared
// per-machine kv::QueryCache (bounded, shared by the machine's worker
// threads) rather than a bespoke O(n) atomic array; an evicted state is
// simply recomputed, so outputs never depend on cache contents.
enum MisState : uint8_t { kUnknown = 0, kInMis = 1, kNotInMis = 2 };

// Resumable, iterative version of the IsInMIS recursion of Figure 1: v
// is in the MIS iff none of its preceding neighbors is. An explicit
// stack replaces recursion because descending-rank chains can be
// Theta(n) long, and the resolution is a state machine so a worker can
// run many of them in lockstep: Advance runs until the resolution either
// needs a remote adjacency (`pending` set — exactly where the scalar
// client issued its synchronous Lookup) or finishes (`done` set), and
// each adaptive step fetches every active resolution's pending adjacency
// with one LookupMany batch.
struct MisResolveState {
  struct Frame {
    NodeId v;
    const std::vector<NodeId>* adj;  // preceding neighbors, ascending rank
    size_t idx;
    bool awaiting;  // a child frame is computing adj[idx]'s state
  };

  int64_t item = 0;
  std::vector<Frame> stack;
  uint8_t last = kUnknown;
  NodeId pending = 0;
  bool done = false;
  kv::QueryCache<uint8_t>* cache = nullptr;
  uint64_t epoch = 0;  // the adjacency store's version (see CacheGet)

  uint8_t CacheGet(NodeId x) const {
    if (cache == nullptr) return kUnknown;
    return cache->Get(x, epoch).value_or(static_cast<uint8_t>(kUnknown));
  }
  void CacheSet(NodeId x, uint8_t state) {
    if (cache != nullptr) cache->Put(x, epoch, state);
  }

  // Runs the resolution until it terminates (done = true, result in
  // `last`) or needs the adjacency of `pending`.
  void Advance(sim::MachineContext& ctx) {
    while (!stack.empty()) {
      Frame& f = stack.back();
      if (f.awaiting) {
        f.awaiting = false;
        if (last == kInMis) {
          CacheSet(f.v, kNotInMis);
          last = kNotInMis;
          stack.pop_back();
          continue;
        }
        ++f.idx;  // child resolved NotInMIS; keep scanning
      }
      bool needs_lookup = false;
      uint8_t decided = kUnknown;
      while (f.adj != nullptr && f.idx < f.adj->size()) {
        const NodeId u = (*f.adj)[f.idx];
        const uint8_t su = CacheGet(u);
        if (su == kInMis) {
          ctx.CountCacheHit();
          decided = kNotInMis;
          break;
        }
        if (su == kNotInMis) {
          ctx.CountCacheHit();
          ++f.idx;
          continue;
        }
        // A derived-state miss: the resolution must descend, fetching
        // u's adjacency through the read-through lookup pipeline (which
        // does its own hit/miss accounting at the query-cache layer).
        if (cache != nullptr) ctx.CountCacheMiss();
        f.awaiting = true;
        pending = u;
        needs_lookup = true;
        break;
      }
      if (needs_lookup) return;
      if (decided == kUnknown) decided = kInMis;  // no preceding MIS nbr
      CacheSet(stack.back().v, decided);
      last = decided;
      stack.pop_back();
    }
    done = true;
  }

  // Feeds the fetched adjacency of `pending` back in and keeps going.
  void Resume(const std::vector<NodeId>* adj, sim::MachineContext& ctx) {
    stack.push_back(Frame{pending, adj, 0, false});
    Advance(ctx);
  }
};

}  // namespace

MisResult AmpcMis(sim::Cluster& cluster, const Graph& g, uint64_t seed) {
  const int64_t n = g.num_nodes();

  // Phase 1 — DirectGraph (the algorithm's single shuffle): keep only
  // neighbors preceding v in the permutation, sorted by ascending rank.
  WallTimer direct_timer;
  std::vector<std::vector<NodeId>> directed(n);
  std::atomic<int64_t> shuffle_bytes{0};
  ParallelForChunked(
      cluster.pool(), 0, n, 512, [&](int64_t lo, int64_t hi) {
        int64_t bytes = 0;
        for (int64_t vi = lo; vi < hi; ++vi) {
          const NodeId v = static_cast<NodeId>(vi);
          std::vector<NodeId>& out = directed[vi];
          for (NodeId u : g.neighbors(v)) {
            if (VertexBefore(u, v, seed)) out.push_back(u);
          }
          std::sort(out.begin(), out.end(), [&](NodeId a, NodeId b) {
            return VertexBefore(a, b, seed);
          });
          bytes += kv::kKeyBytes + kv::KvByteSize(out);
        }
        shuffle_bytes.fetch_add(bytes, std::memory_order_relaxed);
      });
  cluster.AccountShuffle("DirectGraph", shuffle_bytes.load(),
                         direct_timer.Seconds());

  // Phase 2 — write the directed graph to the key-value store.
  kv::ShardedStore<std::vector<NodeId>> store =
      cluster.MakeStore<std::vector<NodeId>>(n);
  cluster.RunKvWritePhase("KV-Write", store, n, [&](int64_t v) {
    return std::move(directed[v]);
  });
  directed.clear();
  directed.shrink_to_fit();

  // Phase 3 — IsInMIS over all vertices. Resolved three-valued states
  // are cached per machine in the shared bounded query-cache budget
  // (ClusterConfig::query_cache); the adjacency fetches underneath are
  // additionally served by the store's own read-through caches.
  kv::MachineCaches<uint8_t> caches =
      cluster.MakeMachineCaches<uint8_t>();

  MisResult result;
  result.in_mis.assign(n, 0);
  cluster.RunBatchMapPhase(
      "IsInMIS", n,
      [&](std::span<const int64_t> items, sim::MachineContext& ctx) {
        kv::QueryCache<uint8_t>* cache = caches.ForMachine(ctx.machine_id());
        const uint64_t epoch = store.version();
        std::vector<MisResolveState> states;
        states.reserve(items.size());
        for (const int64_t item : items) {
          const NodeId root = static_cast<NodeId>(item);
          MisResolveState s;
          s.item = item;
          s.cache = cache;
          s.epoch = epoch;
          if (const uint8_t cached = s.CacheGet(root); cached != kUnknown) {
            ctx.CountCacheHit();
            s.last = cached;
            s.done = true;
          } else {
            // The root's own record is machine-local ParDo input; not
            // charged.
            s.stack.push_back(MisResolveState::Frame{
                root, ctx.LookupLocal(store, root), 0, false});
            s.Advance(ctx);
          }
          states.push_back(std::move(s));
        }
        sim::DriveLookupPipelined(
            ctx, store, states,
            [](const MisResolveState& s) { return s.done; },
            [](const MisResolveState& s) {
              return static_cast<uint64_t>(s.pending);
            },
            [&ctx](MisResolveState& s, const std::vector<NodeId>* adj) {
              s.Resume(adj, ctx);
            });
        for (const MisResolveState& s : states) {
          result.in_mis[s.item] = (s.last == kInMis) ? 1 : 0;
        }
      });
  return result;
}

}  // namespace ampc::core
