// AMPC Maximal Independent Set (paper Figure 1, Section 5.3).
//
// Computes the lexicographically-first MIS over the random vertex
// permutation induced by core::VertexRank. Three phases:
//   1. DirectGraph (one shuffle): each adjacency keeps only neighbors that
//      precede the vertex in the permutation, sorted by ascending rank.
//   2. KV-Write (cheap round): the directed graph is written to the DHT.
//   3. IsInMIS (cheap round): every vertex runs the recursive query
//      process of Yoshida et al. [69] adapted to AMPC by [19]; results are
//      memoized in per-machine three-state caches (Unknown / InMIS /
//      NotInMIS) held in the shared bounded query-cache budget
//      (kv::QueryCache via Cluster::MakeMachineCaches) when
//      ClusterConfig::query_cache is enabled; the adjacency fetches
//      underneath are additionally served by the stores' read-through
//      caches.
//
// The output equals seq::GreedyMis for the same seed, by construction.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "sim/cluster.h"

namespace ampc::core {

struct MisResult {
  /// in_mis[v] == 1 iff v belongs to the MIS.
  std::vector<uint8_t> in_mis;
};

/// Runs the AMPC MIS algorithm on `cluster`. All rounds, shuffle bytes and
/// KV traffic are recorded in cluster.metrics().
MisResult AmpcMis(sim::Cluster& cluster, const graph::Graph& g,
                  uint64_t seed);

}  // namespace ampc::core
