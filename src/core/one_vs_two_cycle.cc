#include "core/one_vs_two_cycle.h"

#include <algorithm>
#include <atomic>
#include <unordered_map>

#include "common/concurrent_bag.h"
#include "common/logging.h"
#include "common/timer.h"
#include "core/priorities.h"
#include "kv/sharded_store.h"
#include "seq/union_find.h"

namespace ampc::core {
namespace {

using graph::Graph;
using graph::NodeId;

struct CycleAdj {
  NodeId a;
  NodeId b;
};
static_assert(std::is_trivially_copyable_v<CycleAdj>);

bool IsSampled(NodeId v, uint64_t seed, double probability) {
  return ToUnitDouble(Hash64(v, seed ^ 0x327633ULL)) < probability;
}

}  // namespace

CycleResult AmpcOneVsTwoCycle(sim::Cluster& cluster, const Graph& g,
                              const CycleOptions& options) {
  const int64_t n = g.num_nodes();
  AMPC_CHECK_GE(n, 3);

  // One shuffle + KV write stages the (successor, predecessor) records.
  WallTimer stage_timer;
  kv::ShardedStore<CycleAdj> store = cluster.MakeStore<CycleAdj>(n);
  int64_t bytes = 0;
  for (int64_t v = 0; v < n; ++v) {
    AMPC_CHECK_EQ(g.degree(static_cast<NodeId>(v)), 2)
        << "1-vs-2-cycle input must be a union of cycles";
    bytes += kv::kKeyBytes + static_cast<int64_t>(sizeof(CycleAdj));
  }
  cluster.AccountShuffle("WriteGraph", bytes, stage_timer.Seconds());
  cluster.RunKvWritePhase("KV-Write", store, n, [&](int64_t v) {
    auto nbrs = g.neighbors(static_cast<NodeId>(v));
    return CycleAdj{nbrs[0], nbrs[1]};
  });

  CycleResult result;
  double probability = options.sample_probability;
  for (int attempt = 0; attempt < options.max_attempts; ++attempt) {
    ++result.attempts;
    const uint64_t seed = options.seed + attempt;

    // Every sampled vertex searches outward in both directions until the
    // next sample (or all the way around). The union of all walks covers
    // exactly the vertices of cycles containing at least one sample, so
    // comparing the covered count against n detects unsampled cycles.
    // Each worker advances all of its samples' walks together: every
    // adaptive step fetches the whole frontier's neighbor records as
    // pipelined sub-batch windows (round trips of up to pipeline_depth
    // windows overlapped) instead of one synchronous round trip per
    // walk per hop.
    ConcurrentBag<std::pair<NodeId, NodeId>> contracted;
    std::vector<std::atomic<uint8_t>> covered(n);
    for (auto& c : covered) c.store(0, std::memory_order_relaxed);
    std::atomic<int64_t> samples{0};
    cluster.RunBatchMapPhase(
        "Search", n,
        [&](std::span<const int64_t> items, sim::MachineContext& ctx) {
          struct WalkState {
            NodeId v;             // the sampled origin
            const CycleAdj* own;  // its own (machine-local) record
            int dir;              // 0 = via own->a, 1 = via own->b
            NodeId prev;
            NodeId cur;
            bool done;
          };
          // Runs walk logic that needs no lookup: emits contracted
          // edges at walk ends and switches direction; stops at the
          // first vertex whose record must be fetched.
          auto advance = [&](WalkState& w) {
            for (;;) {
              if (w.cur == w.v || IsSampled(w.cur, seed, probability)) {
                contracted.Push({w.v, w.cur});  // cur == v: a full loop
                if (w.cur == w.v || w.dir == 1) {
                  w.done = true;  // whole cycle traversed, or both dirs
                  return;
                }
                w.dir = 1;
                w.prev = w.v;
                w.cur = w.own->b;
                continue;
              }
              covered[w.cur].store(1, std::memory_order_relaxed);
              return;  // needs Lookup(w.cur)
            }
          };
          std::vector<WalkState> walks;
          for (const int64_t item : items) {
            const NodeId v = static_cast<NodeId>(item);
            if (!IsSampled(v, seed, probability)) continue;
            samples.fetch_add(1, std::memory_order_relaxed);
            covered[v].store(1, std::memory_order_relaxed);
            const CycleAdj* own = ctx.LookupLocal(store, v);
            WalkState w{v, own, 0, v, own->a, false};
            advance(w);
            if (!w.done) walks.push_back(w);
          }
          sim::DriveLookupPipelined(
              ctx, store, walks,
              [](const WalkState& w) { return w.done; },
              [](const WalkState& w) {
                return static_cast<uint64_t>(w.cur);
              },
              [&](WalkState& w, const CycleAdj* adj) {
                AMPC_CHECK(adj != nullptr);
                const NodeId next = (adj->a == w.prev) ? adj->b : adj->a;
                w.prev = w.cur;
                w.cur = next;
                advance(w);
              });
        });

    int64_t covered_count = 0;
    for (const auto& c : covered) {
      covered_count += c.load(std::memory_order_relaxed);
    }
    result.visited = covered_count;
    result.samples = samples.load();

    // Gather the contracted instance onto one machine and count cycles.
    std::vector<std::pair<NodeId, NodeId>> edges = contracted.Take();
    cluster.AccountInMemoryFinish(
        "SolveContracted",
        static_cast<int64_t>(edges.size()) * 2 *
            static_cast<int64_t>(sizeof(NodeId)),
        static_cast<int64_t>(edges.size()));

    // Components among sampled vertices (self-loop = an entire cycle).
    std::unordered_map<NodeId, int64_t> index;
    for (const auto& [a, b] : edges) {
      index.emplace(a, static_cast<int64_t>(index.size()));
      index.emplace(b, static_cast<int64_t>(index.size()));
    }
    seq::UnionFind uf(static_cast<int64_t>(index.size()));
    for (const auto& [a, b] : edges) uf.Union(index[a], index[b]);
    std::unordered_map<int64_t, int> roots;
    // ampc-lint: allow(det-unordered-iter): only roots.size() is read,
    // which is invariant under visitation order.
    for (const auto& [node, idx] : index) roots[uf.Find(idx)] = 1;
    const int sampled_cycles = static_cast<int>(roots.size());

    if (result.visited == n) {
      result.num_cycles = sampled_cycles;
      return result;
    }
    if (sampled_cycles >= 1) {
      // At least one cycle is fully unsampled; with the 1-vs-2 promise
      // the answer must be 2.
      result.num_cycles = sampled_cycles + 1;
      return result;
    }
    // No sample landed anywhere: retry with a denser sample.
    probability = std::min(1.0, probability * options.retry_growth);
  }
  // Deterministic fallback: sample probability 1 always terminates above,
  // so reaching this point is a logic error.
  AMPC_CHECK(false) << "1-vs-2-cycle did not resolve";
  return result;
}

}  // namespace ampc::core
