// AMPC Connected Components (paper Theorem 1): compute a spanning forest
// with the MSF algorithm (unit weights, ids break ties), then label
// components with the forest-connectivity primitive of Proposition 3.2.
//
// Substitution note (documented in DESIGN.md): Proposition 3.2's
// ForestConnectivity of [19] is treated as a black box. We realize it by
// rooting the forest and propagating root labels — charged as the O(1/eps)
// rounds the proposition prescribes (two shuffles + one map round).
#pragma once

#include <cstdint>
#include <vector>

#include "core/msf.h"
#include "graph/graph.h"
#include "sim/cluster.h"

namespace ampc::core {

struct ConnectivityResult {
  /// component[v] = representative vertex id of v's component.
  std::vector<graph::NodeId> component;
  /// Number of distinct components.
  int64_t num_components = 0;
  /// Spanning forest used (edge ids into the synthetic unit-weight list).
  std::vector<graph::EdgeId> forest_edges;
};

/// Connected components of an undirected graph in O(1) rounds.
ConnectivityResult AmpcConnectivity(sim::Cluster& cluster,
                                    const graph::EdgeList& list,
                                    const MsfOptions& options = {});

}  // namespace ampc::core
