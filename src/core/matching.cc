#include "core/matching.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>
#include <memory>
#include <optional>
#include <unordered_map>

#include "common/logging.h"
#include "common/timer.h"
#include "core/priorities.h"
#include "kv/query_cache.h"
#include "kv/sharded_store.h"

namespace ampc::core {
namespace {

using graph::EdgeId;
using graph::EdgeList;
using graph::Graph;
using graph::kInvalidNode;
using graph::NodeId;

// ---------------------------------------------------------------------------
// Edge ordering: (hash rank, lexicographic endpoints) is a total order on
// undirected edges, shared with the sequential oracle.
// ---------------------------------------------------------------------------

struct EdgeOrder {
  uint64_t seed;
  // Optional major key: all of bucket k precedes all of bucket k+1
  // (Corollary 4.1 weighted reduction). nullptr = single bucket.
  const EdgeBucketMap* buckets = nullptr;

  uint64_t Rank(NodeId a, NodeId b) const { return EdgeRank(a, b, seed); }

  uint32_t Bucket(NodeId a, NodeId b) const {
    if (buckets == nullptr) return 0;
    const auto it = buckets->find(EdgeKey(a, b));
    return it == buckets->end() ? 0 : it->second;
  }

  // True iff edge (a1,b1) precedes (a2,b2) in the permutation.
  bool Before(NodeId a1, NodeId b1, NodeId a2, NodeId b2) const {
    if (buckets != nullptr) {
      const uint32_t c1 = Bucket(a1, b1);
      const uint32_t c2 = Bucket(a2, b2);
      if (c1 != c2) return c1 < c2;
    }
    const uint64_t r1 = Rank(a1, b1);
    const uint64_t r2 = Rank(a2, b2);
    if (r1 != r2) return r1 < r2;
    const std::pair<NodeId, NodeId> k1{std::min(a1, b1), std::max(a1, b1)};
    const std::pair<NodeId, NodeId> k2{std::min(a2, b2), std::max(a2, b2)};
    return k1 < k2;
  }
};

// ---------------------------------------------------------------------------
// Per-machine vertex cache (Section 5.4): packs {state, neighbor} into one
// word held in the machine's shared kv::QueryCache. kPrefix(p) means every
// edge (v, y) with rank <= rank(v, p) is known to be out of the matching;
// kVMatched(p) means (v, p) is in it. The cache is bounded (an evicted
// word is recomputed, never wrong) and versioned against the staged
// adjacency store, so the derived facts die with the graph they were
// derived from.
// ---------------------------------------------------------------------------

enum VertexCacheState : uint64_t { kVUnsearched = 0, kVPrefix = 1, kVMatched = 2 };

inline uint64_t EncodeCache(uint64_t state, NodeId node) {
  return (state << 32) | node;
}
inline uint64_t CacheState(uint64_t word) { return word >> 32; }
inline NodeId CacheNode(uint64_t word) {
  return static_cast<NodeId>(word & 0xffffffffULL);
}

class VertexCache {
 public:
  VertexCache(kv::QueryCache<uint64_t>* cache, uint64_t epoch,
              const EdgeOrder* order)
      : cache_(cache), epoch_(epoch), order_(order) {}

  bool enabled() const { return cache_ != nullptr; }

  uint64_t Load(NodeId v) const {
    if (cache_ == nullptr) return EncodeCache(kVUnsearched, 0);
    return cache_->Get(v, epoch_).value_or(EncodeCache(kVUnsearched, 0));
  }

  // Records the terminal fact that (v, partner) is matched.
  void SetMatched(NodeId v, NodeId partner) {
    if (cache_ == nullptr) return;
    cache_->Put(v, epoch_, EncodeCache(kVMatched, partner));
  }

  // Extends v's known out-of-matching prefix to cover rank(v, upto).
  // Monotone read-modify-write under the cache's shard lock (the shared
  // QueryCache replaces the old per-slot compare-exchange loop).
  void ExtendPrefix(NodeId v, NodeId upto) {
    if (cache_ == nullptr) return;
    cache_->Update(v, epoch_, [&](std::optional<uint64_t> cur) -> uint64_t {
      const uint64_t word = cur.value_or(EncodeCache(kVUnsearched, 0));
      if (CacheState(word) == kVMatched) return word;
      if (CacheState(word) == kVPrefix &&
          !order_->Before(v, CacheNode(word), v, upto)) {
        return word;  // existing prefix already covers upto
      }
      return EncodeCache(kVPrefix, upto);
    });
  }

 private:
  kv::QueryCache<uint64_t>* cache_;
  uint64_t epoch_;
  const EdgeOrder* order_;
};

enum class EdgeStatus { kIn, kOut, kUnknown };

// Cache-only status of edge (x, y).
EdgeStatus StatusFromCache(const VertexCache& cache, const EdgeOrder& order,
                           NodeId x, NodeId y) {
  for (int side = 0; side < 2; ++side) {
    const NodeId w = side == 0 ? x : y;
    const NodeId other = side == 0 ? y : x;
    const uint64_t word = cache.Load(w);
    switch (CacheState(word)) {
      case kVMatched:
        return CacheNode(word) == other ? EdgeStatus::kIn : EdgeStatus::kOut;
      case kVPrefix:
        // Out if rank(x, y) <= rank(w, prefix-neighbor).
        if (!order.Before(w, CacheNode(word), x, y)) return EdgeStatus::kOut;
        break;
      default:
        break;
    }
  }
  return EdgeStatus::kUnknown;
}

// ---------------------------------------------------------------------------
// The iterative edge query process. An edge is in the matching iff no
// adjacent edge of lower rank is (Section 4.2); children are explored in
// ascending rank by merging the two endpoints' rank-sorted adjacencies.
// ---------------------------------------------------------------------------

using AdjStore = kv::ShardedStore<std::vector<NodeId>>;

enum class EdgeResult { kIn, kOut, kTruncated };

struct QueryBudget {
  int64_t remaining = 0;  // <= 0 means unlimited
  bool limited = false;

  bool Spend() {
    if (!limited) return true;
    return --remaining >= 0;
  }
};

class EdgeProcess {
 public:
  EdgeProcess(sim::MachineContext& ctx, const AdjStore& store,
              VertexCache& cache, const EdgeOrder& order)
      : ctx_(ctx), store_(store), cache_(cache), order_(order) {}

  // Resolves edge (a, b). `adj_a` is the caller-held adjacency of a (the
  // vertex process owns it as local input); b's adjacency is fetched.
  EdgeResult Resolve(NodeId a, NodeId b, const std::vector<NodeId>* adj_a,
                     QueryBudget& budget) {
    stack_.clear();
    if (!Push(a, b, adj_a, nullptr, budget)) return EdgeResult::kTruncated;

    EdgeResult last = EdgeResult::kOut;
    while (!stack_.empty()) {
      Frame& f = stack_.back();
      if (f.awaiting) {
        f.awaiting = false;
        if (last == EdgeResult::kIn) {
          // A lower-rank adjacent edge is matched => f is out. The side
          // that produced the child has a matched endpoint cache entry;
          // record the other side's verified prefix.
          RecordScanPrefix(f);
          last = EdgeResult::kOut;
          stack_.pop_back();
          continue;
        }
        ++(f.awaiting_side == 0 ? f.ia : f.ib);  // child was out: advance
      }

      // Re-check the frame's own status: a descendant resolution may have
      // settled one of its endpoints.
      const EdgeStatus own = StatusFromCache(cache_, order_, f.a, f.b);
      if (own != EdgeStatus::kUnknown) {
        last = own == EdgeStatus::kIn ? EdgeResult::kIn : EdgeResult::kOut;
        stack_.pop_back();
        continue;
      }

      // Find the lowest-ranked unresolved adjacent edge below f's rank.
      const int side = NextCandidate(f);
      if (side < 0) {
        // Every lower-rank adjacent edge is out: f joins the matching.
        cache_.SetMatched(f.a, f.b);
        cache_.SetMatched(f.b, f.a);
        last = EdgeResult::kIn;
        stack_.pop_back();
        continue;
      }
      const NodeId w = side == 0 ? f.a : f.b;
      const NodeId x =
          side == 0 ? (*f.adj_a)[f.ia] : (*f.adj_b)[f.ib];
      const EdgeStatus st = StatusFromCache(cache_, order_, w, x);
      if (st == EdgeStatus::kOut) {
        ctx_.CountCacheHit();
        ++(side == 0 ? f.ia : f.ib);
        continue;
      }
      if (st == EdgeStatus::kIn) {
        ctx_.CountCacheHit();
        RecordScanPrefix(f);
        last = EdgeResult::kOut;
        stack_.pop_back();
        continue;
      }
      // Unknown: recurse into (w, x). w's adjacency is already held by f.
      f.awaiting = true;
      f.awaiting_side = static_cast<uint8_t>(side);
      const std::vector<NodeId>* adj_w = side == 0 ? f.adj_a : f.adj_b;
      if (!Push(w, x, adj_w, nullptr, budget)) return EdgeResult::kTruncated;
    }
    return last;
  }

 private:
  struct Frame {
    NodeId a, b;
    const std::vector<NodeId>* adj_a;
    const std::vector<NodeId>* adj_b;
    uint32_t ia = 0, ib = 0;
    bool awaiting = false;
    uint8_t awaiting_side = 0;
  };

  // Pushes a frame for edge (a, b); fetches any adjacency not supplied.
  // The fetches flow through the read-through lookup pipeline, which
  // does its own hit/miss accounting and serves repeated adjacencies
  // from the machine's query cache.
  bool Push(NodeId a, NodeId b, const std::vector<NodeId>* adj_a,
            const std::vector<NodeId>* adj_b, QueryBudget& budget) {
    if (adj_a == nullptr) {
      if (!budget.Spend()) return false;
      adj_a = ctx_.Lookup(store_, a);
    }
    if (adj_b == nullptr) {
      if (!budget.Spend()) return false;
      adj_b = ctx_.Lookup(store_, b);
    }
    stack_.push_back(Frame{a, b, adj_a, adj_b, 0, 0, false, 0});
    return true;
  }

  // Advances both scan cursors past edges already known to be out, then
  // returns the side (0 = a, 1 = b) holding the lowest-ranked candidate
  // strictly below f's own rank, or -1 when both sides are exhausted.
  int NextCandidate(Frame& f) {
    auto side_ok = [&](const std::vector<NodeId>* adj, uint32_t idx,
                       NodeId w) {
      return adj != nullptr && idx < adj->size() &&
             order_.Before(w, (*adj)[idx], f.a, f.b);
    };
    const bool a_ok = side_ok(f.adj_a, f.ia, f.a);
    const bool b_ok = side_ok(f.adj_b, f.ib, f.b);
    if (!a_ok && !b_ok) return -1;
    if (a_ok && b_ok) {
      return order_.Before(f.a, (*f.adj_a)[f.ia], f.b, (*f.adj_b)[f.ib]) ? 0
                                                                         : 1;
    }
    return a_ok ? 0 : 1;
  }

  // Records verified out-of-matching prefixes for both endpoints of f:
  // every edge the scan advanced past was confirmed out.
  void RecordScanPrefix(const Frame& f) {
    if (f.ia > 0) cache_.ExtendPrefix(f.a, (*f.adj_a)[f.ia - 1]);
    if (f.ib > 0) cache_.ExtendPrefix(f.b, (*f.adj_b)[f.ib - 1]);
  }

  sim::MachineContext& ctx_;
  const AdjStore& store_;
  VertexCache& cache_;
  const EdgeOrder& order_;
  std::vector<Frame> stack_;
};

// ---------------------------------------------------------------------------
// The vertex query process (Theorem 2 part 2): iterate v's incident edges
// in ascending rank; the first one resolving In matches v.
// Returns kTruncated when the budget runs out (vertex stays unsettled).
// ---------------------------------------------------------------------------

enum class VertexOutcome { kMatched, kUnmatched, kTruncated };

VertexOutcome ProcessVertex(NodeId v, sim::MachineContext& ctx,
                            const AdjStore& store, VertexCache& cache,
                            const EdgeOrder& order, int64_t max_queries,
                            NodeId* partner_out) {
  const uint64_t word = cache.Load(v);
  if (CacheState(word) == kVMatched) {
    ctx.CountCacheHit();
    *partner_out = CacheNode(word);
    return VertexOutcome::kMatched;
  }

  const std::vector<NodeId>* adj = ctx.LookupLocal(store, v);
  if (adj == nullptr || adj->empty()) {
    *partner_out = kInvalidNode;
    return VertexOutcome::kUnmatched;
  }

  QueryBudget budget;
  budget.limited = max_queries > 0;
  budget.remaining = max_queries;

  EdgeProcess process(ctx, store, cache, order);
  for (size_t i = 0; i < adj->size(); ++i) {
    const NodeId x = (*adj)[i];
    const EdgeStatus st = StatusFromCache(cache, order, v, x);
    if (st == EdgeStatus::kOut) {
      ctx.CountCacheHit();
      continue;
    }
    EdgeResult r;
    if (st == EdgeStatus::kIn) {
      ctx.CountCacheHit();
      r = EdgeResult::kIn;
    } else {
      r = process.Resolve(v, x, adj, budget);
    }
    if (r == EdgeResult::kTruncated) return VertexOutcome::kTruncated;
    if (r == EdgeResult::kIn) {
      // (v, x) in matching iff it is v's matched edge; but In here can
      // also mean x matched elsewhere... Resolve(v, x) == kIn means edge
      // (v, x) itself is in the matching.
      *partner_out = x;
      return VertexOutcome::kMatched;
    }
    cache.ExtendPrefix(v, x);
  }
  *partner_out = kInvalidNode;
  return VertexOutcome::kUnmatched;
}

// ---------------------------------------------------------------------------
// Graph staging: build the rank-sorted adjacency restricted to alive
// vertices and (optionally) to edges below a rank threshold, charge the
// shuffle, and write it to a fresh store.
// ---------------------------------------------------------------------------

struct StagedGraph {
  std::unique_ptr<AdjStore> store;
};

StagedGraph StageGraph(sim::Cluster& cluster, const Graph& g,
                       const EdgeOrder& order, const std::string& phase,
                       const std::vector<uint8_t>* alive,
                       double rank_threshold) {
  const int64_t n = g.num_nodes();
  WallTimer timer;
  std::vector<std::vector<NodeId>> adjacency(n);
  std::atomic<int64_t> bytes{0};
  ParallelForChunked(
      cluster.pool(), 0, n, 512, [&](int64_t lo, int64_t hi) {
        int64_t local_bytes = 0;
        for (int64_t vi = lo; vi < hi; ++vi) {
          const NodeId v = static_cast<NodeId>(vi);
          if (alive != nullptr && !(*alive)[vi]) continue;
          std::vector<NodeId>& out = adjacency[vi];
          for (NodeId u : g.neighbors(v)) {
            if (alive != nullptr && !(*alive)[u]) continue;
            if (rank_threshold < 1.0 &&
                ToUnitDouble(order.Rank(v, u)) > rank_threshold) {
              continue;
            }
            out.push_back(u);
          }
          std::sort(out.begin(), out.end(), [&](NodeId p, NodeId q) {
            return order.Before(v, p, v, q);
          });
          local_bytes += kv::kKeyBytes + kv::KvByteSize(out);
        }
        bytes.fetch_add(local_bytes, std::memory_order_relaxed);
      });
  cluster.AccountShuffle(phase, bytes.load(), timer.Seconds());

  StagedGraph staged;
  staged.store = std::make_unique<AdjStore>(
      cluster.MakeStore<std::vector<NodeId>>(n));
  cluster.RunKvWritePhase("KV-Write", *staged.store, n, [&](int64_t v) {
    return std::move(adjacency[v]);
  });
  return staged;
}

// One IsInMM sweep over the unsettled vertices. Returns how many remain.
// Derived vertex-status words live in the shared per-machine caches
// (sim::Cluster::MakeMachineCaches), versioned against the staged store.
int64_t RunMatchingPhase(sim::Cluster& cluster, const AdjStore& store,
                         const EdgeOrder& order,
                         kv::MachineCaches<uint64_t>& caches,
                         int64_t max_queries, const std::string& phase,
                         const std::vector<uint8_t>* alive,
                         std::vector<uint8_t>& settled,
                         std::vector<NodeId>& partner) {
  const int64_t n = static_cast<int64_t>(settled.size());
  const uint64_t epoch = store.version();
  std::atomic<int64_t> unsettled{0};
  cluster.RunMapPhase(phase, n, [&](int64_t item, sim::MachineContext& ctx) {
    if (settled[item]) return;
    if (alive != nullptr && !(*alive)[item]) {
      settled[item] = 1;
      return;
    }
    VertexCache cache(caches.ForMachine(ctx.machine_id()), epoch, &order);
    NodeId p = kInvalidNode;
    const VertexOutcome outcome = ProcessVertex(
        static_cast<NodeId>(item), ctx, store, cache, order, max_queries, &p);
    if (outcome == VertexOutcome::kTruncated) {
      unsettled.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    partner[item] = p;
    settled[item] = 1;
  });
  return unsettled.load();
}

}  // namespace

MatchingResult AmpcMatching(sim::Cluster& cluster, const Graph& g,
                            const MatchingOptions& options) {
  const int64_t n = g.num_nodes();
  const EdgeOrder order{options.seed, options.edge_buckets};

  StagedGraph staged =
      StageGraph(cluster, g, order, "PermuteGraph", nullptr, 1.0);
  kv::MachineCaches<uint64_t> caches =
      cluster.MakeMachineCaches<uint64_t>();

  MatchingResult result;
  result.partner.assign(n, kInvalidNode);
  std::vector<uint8_t> settled(n, 0);

  int64_t budget = options.max_queries_per_vertex;
  int64_t last_remaining = std::numeric_limits<int64_t>::max();
  for (int phase = 0; phase < options.max_phases; ++phase) {
    ++result.phases;
    const int64_t remaining = RunMatchingPhase(
        cluster, *staged.store, order, caches, budget, "IsInMM", nullptr,
        settled, result.partner);
    if (remaining == 0) break;
    if (!cluster.config().query_cache.enabled ||
        remaining >= last_remaining) {
      // Without cross-query caches a repeat pass cannot make more
      // progress than the last; widen the budget instead (Lemma 4.7's
      // O(1/eps) repetitions assume progress is persisted between
      // rounds). The same applies when the caches *are* on but made no
      // headway: the bounded cache may thrash (capacity << n) and
      // persist nothing between passes, so a stalled phase count means
      // only a wider budget guarantees progress — without this,
      // repeat passes could replay the same truncated work until the
      // max_phases check aborts.
      budget *= 2;
    }
    last_remaining = remaining;
    AMPC_CHECK_LT(phase + 1, options.max_phases)
        << "matching did not settle within max_phases";
  }
  return result;
}

MatchingResult AmpcMatchingSampled(sim::Cluster& cluster, const Graph& g,
                                   const MatchingOptions& options) {
  const int64_t n = g.num_nodes();
  AMPC_CHECK(options.edge_buckets == nullptr)
      << "edge_buckets is only supported by AmpcMatching: the sampled "
         "variant's rank thresholds assume a uniform edge permutation";
  const EdgeOrder order{options.seed};

  MatchingResult result;
  result.partner.assign(n, kInvalidNode);
  std::vector<uint8_t> alive(n, 1);

  // Maximum degree of the alive graph, computed with a cheap map round.
  auto alive_max_degree = [&]() {
    std::atomic<int64_t> maxdeg{0};
    cluster.RunMapPhase(
        "MaxDegree", n, [&](int64_t item, sim::MachineContext&) {
          if (!alive[item]) return;
          int64_t deg = 0;
          for (NodeId u : g.neighbors(static_cast<NodeId>(item))) {
            if (alive[u]) ++deg;
          }
          int64_t cur = maxdeg.load(std::memory_order_relaxed);
          while (deg > cur &&
                 !maxdeg.compare_exchange_weak(cur, deg,
                                               std::memory_order_relaxed)) {
          }
        });
    return maxdeg.load();
  };

  const double logn = std::log(std::max<int64_t>(2, n));
  int64_t delta = alive_max_degree();
  const int max_iters =
      delta <= 1
          ? 1
          : static_cast<int>(
                std::ceil(std::log2(std::max(
                    2.0, std::log2(static_cast<double>(delta))))) +
                4);

  for (int iter = 0; iter < max_iters + 8; ++iter) {
    if (delta == 0) break;  // no alive edges remain
    ++result.phases;
    // H_i: keep edges below the sampling threshold unless the graph is
    // already low-degree (Algorithm 4 lines 4-7).
    const bool final_round = delta <= 10 * logn;
    const double threshold =
        final_round ? 1.0
                    : 1.0 / std::sqrt(static_cast<double>(delta));

    StagedGraph staged =
        StageGraph(cluster, g, order, "SampleGraph", &alive, threshold);
    kv::MachineCaches<uint64_t> caches =
        cluster.MakeMachineCaches<uint64_t>();

    std::vector<uint8_t> settled(n, 0);
    std::vector<NodeId> iter_partner(n, kInvalidNode);
    RunMatchingPhase(cluster, *staged.store, order, caches,
                     /*max_queries=*/0, "IsInMM", &alive, settled,
                     iter_partner);

    // Commit matched pairs and delete their vertices (G_{i+1}).
    for (int64_t v = 0; v < n; ++v) {
      if (iter_partner[v] != kInvalidNode) {
        result.partner[v] = iter_partner[v];
        alive[v] = 0;
      }
    }
    delta = alive_max_degree();
    if (final_round && delta == 0) break;
  }
  AMPC_CHECK_EQ(delta, 0) << "sampled matching did not converge";
  return result;
}

seq::MatchingResult ToSeqMatching(const EdgeList& list,
                                  const std::vector<NodeId>& partner) {
  std::unordered_map<uint64_t, EdgeId> edge_of;
  edge_of.reserve(list.edges.size());
  for (size_t i = 0; i < list.edges.size(); ++i) {
    const NodeId lo = std::min(list.edges[i].u, list.edges[i].v);
    const NodeId hi = std::max(list.edges[i].u, list.edges[i].v);
    edge_of.emplace((static_cast<uint64_t>(lo) << 32) | hi,
                    static_cast<EdgeId>(i));
  }
  seq::MatchingResult out;
  out.partner = partner;
  for (size_t v = 0; v < partner.size(); ++v) {
    const NodeId p = partner[v];
    if (p == kInvalidNode || p < v) continue;
    const NodeId lo = std::min(static_cast<NodeId>(v), p);
    const NodeId hi = std::max(static_cast<NodeId>(v), p);
    auto it = edge_of.find((static_cast<uint64_t>(lo) << 32) | hi);
    AMPC_CHECK(it != edge_of.end()) << "matched pair is not a graph edge";
    out.edges.push_back(it->second);
  }
  std::sort(out.edges.begin(), out.edges.end());
  return out;
}

}  // namespace ampc::core
