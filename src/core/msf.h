// AMPC Minimum Spanning Forest (paper Section 3, Algorithms 1-2;
// implementation Section 5.5).
//
// Per contraction round:
//   SortGraph (shuffle)   adjacency sorted by (weight, edge id),
//   KV-Write  (cheap)     written to the DHT,
//   PrimSearch (map)      every vertex runs Prim's algorithm truncated by
//                         the three stopping rules of Algorithm 1 —
//                         (1) search_limit vertices explored,
//                         (2) component exhausted,
//                         (3) an edge is added to a vertex that precedes
//                             the origin in the random permutation — and
//                         emits the MSF edges it discovered plus, for
//                         rule (3), the visitor pointer v -> u,
//   Combine (shuffle)     visitor tuples grouped by visited vertex,
//   PointerJump           parent pointers written to the DHT and chased
//                         to roots (paper observed max chain length 33),
//   Contract (2 shuffles) the graph is contracted by the root mapping.
//
// Rounds repeat until the residual graph fits the in-memory threshold,
// where Kruskal finishes (the paper found one round suffices in practice).
// Edge weights are totally ordered by (weight, id), so the MSF is unique
// and tested for exact equality against seq::KruskalMsf.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "sim/cluster.h"

namespace ampc::core {

struct MsfOptions {
  uint64_t seed = 42;
  /// Stopping rule (1): a search stops after exploring this many vertices.
  /// 0 derives ceil(n^{eps/2}) from `eps`.
  int64_t search_limit = 0;
  /// Exponent for the derived search limit (space per machine n^eps).
  /// The paper's footnote observes that in real deployments eps exceeds
  /// 1 (each machine holds more bytes than the graph has vertices: 262GB
  /// machines against n up to 3.56B give eps ~ 1.2), and Section 5.5
  /// reports that a single search pass shrinks the graph to a very small
  /// size. At this library's ~1000x-compressed benchmark scale the same
  /// behaviour needs a proportionally stronger limit, so the default is
  /// the deployment-realistic 1.4 (searches are almost always stopped by
  /// the rank rule, not the budget — as in the paper's runs).
  double eps = 1.4;
  /// Run the ternarization pre-pass of Algorithm 2 (faithful sparse-case
  /// path). The practical configuration (Section 5.5) skips it.
  bool ternarize = false;
  /// Hard cap on contraction rounds (safety; one round is typical).
  int max_rounds = 12;
};

struct MsfResult {
  /// Edge ids (into the input list) of the minimum spanning forest,
  /// sorted ascending.
  std::vector<graph::EdgeId> edges;
  /// Contraction rounds executed before the in-memory finish.
  int rounds = 0;
  /// Longest parent-pointer chain seen while pointer jumping.
  int64_t max_jump_chain = 0;
};

/// Runs the AMPC MSF algorithm. The input edge list's ids must be unique.
MsfResult AmpcMsf(sim::Cluster& cluster, const graph::WeightedEdgeList& list,
                  const MsfOptions& options = {});

}  // namespace ampc::core
