#include "core/pagerank.h"

#include <atomic>
#include <memory>

#include "common/logging.h"
#include "common/random.h"
#include "common/timer.h"
#include "kv/sharded_store.h"

namespace ampc::core {
namespace {

using graph::NodeId;

using AdjStore = kv::ShardedStore<std::vector<NodeId>>;

// Stages the adjacency in the DHT: one shuffle + one cheap KV-write.
std::unique_ptr<AdjStore> StageAdjacency(sim::Cluster& cluster,
                                         const graph::Graph& g) {
  const int64_t n = g.num_nodes();
  WallTimer timer;
  int64_t bytes = 0;
  for (NodeId v = 0; v < n; ++v) bytes += g.AdjacencyBytes(v);
  cluster.AccountShuffle("WriteGraph", bytes, timer.Seconds());
  auto store = std::make_unique<AdjStore>(
      cluster.MakeStore<std::vector<NodeId>>(n));
  cluster.RunKvWritePhase("KV-Write", *store, n, [&](int64_t v) {
    const auto span = g.neighbors(static_cast<NodeId>(v));
    return std::vector<NodeId>(span.begin(), span.end());
  });
  return store;
}

// The walk's next hop from `v`, or kInvalidNode to stop. Dangling
// vertices teleport to a uniform vertex with probability `damping`
// (matching the exact oracle's dangling redistribution) and stop
// otherwise.
NodeId NextHop(const std::vector<NodeId>* adj, int64_t n, double damping,
               Rng& rng) {
  if (!rng.NextBernoulli(damping)) return graph::kInvalidNode;
  if (adj == nullptr || adj->empty()) {
    return static_cast<NodeId>(rng.NextBelow(static_cast<uint64_t>(n)));
  }
  return (*adj)[rng.NextBelow(adj->size())];
}

}  // namespace

PageRankMcResult AmpcMonteCarloPageRank(sim::Cluster& cluster,
                                        const graph::Graph& g,
                                        const PageRankMcOptions& options) {
  const int64_t n = g.num_nodes();
  PageRankMcResult result;
  if (n == 0) return result;
  AMPC_CHECK_GT(options.walks_per_node, 0);

  std::unique_ptr<AdjStore> store = StageAdjacency(cluster, g);

  auto visits = std::make_unique<std::atomic<int64_t>[]>(n);
  for (int64_t v = 0; v < n; ++v) {
    visits[v].store(0, std::memory_order_relaxed);
  }
  std::atomic<int64_t> steps{0};

  cluster.RunMapPhase(
      "RandomWalks", n, [&](int64_t item, sim::MachineContext& ctx) {
        const NodeId start = static_cast<NodeId>(item);
        int64_t local_steps = 0;
        for (int j = 0; j < options.walks_per_node; ++j) {
          // Per-(vertex, walk) hash stream: identical output regardless
          // of which machine/worker runs the item.
          Rng rng(Hash64(static_cast<uint64_t>(item) *
                                 options.walks_per_node +
                             j,
                         options.seed ^ 0x7061676572616e6bULL));
          NodeId v = start;
          const std::vector<NodeId>* adj = ctx.LookupLocal(*store, v);
          for (;;) {
            visits[v].fetch_add(1, std::memory_order_relaxed);
            const NodeId next = NextHop(adj, n, options.damping, rng);
            if (next == graph::kInvalidNode) break;
            v = next;
            adj = ctx.Lookup(*store, v);
            ++local_steps;
          }
        }
        steps.fetch_add(local_steps, std::memory_order_relaxed);
      });

  result.total_steps = steps.load();
  result.rank.resize(n);
  double total = 0.0;
  for (int64_t v = 0; v < n; ++v) {
    result.rank[v] = static_cast<double>(visits[v].load());
    total += result.rank[v];
  }
  for (double& r : result.rank) r /= total;
  return result;
}

PageRankMcResult AmpcPersonalizedPageRank(sim::Cluster& cluster,
                                          const graph::Graph& g,
                                          NodeId source,
                                          const PageRankMcOptions& options) {
  const int64_t n = g.num_nodes();
  PageRankMcResult result;
  if (n == 0) return result;
  AMPC_CHECK_LT(source, n);
  AMPC_CHECK_GT(options.walks_per_node, 0);

  std::unique_ptr<AdjStore> store = StageAdjacency(cluster, g);

  auto visits = std::make_unique<std::atomic<int64_t>[]>(n);
  for (int64_t v = 0; v < n; ++v) {
    visits[v].store(0, std::memory_order_relaxed);
  }
  std::atomic<int64_t> steps{0};

  cluster.RunMapPhase(
      "PersonalizedWalks", n, [&](int64_t item, sim::MachineContext& ctx) {
        int64_t local_steps = 0;
        for (int j = 0; j < options.walks_per_node; ++j) {
          Rng rng(Hash64(static_cast<uint64_t>(item) *
                                 options.walks_per_node +
                             j,
                         options.seed ^ 0x707072616e6bULL));
          NodeId v = source;
          const std::vector<NodeId>* adj = ctx.Lookup(*store, v);
          for (;;) {
            visits[v].fetch_add(1, std::memory_order_relaxed);
            if (!rng.NextBernoulli(options.damping)) break;
            // Dangling vertices return to the source (the personalized
            // teleport target), matching PersonalizedPageRankExact.
            const NodeId next =
                (adj == nullptr || adj->empty())
                    ? source
                    : (*adj)[rng.NextBelow(adj->size())];
            v = next;
            adj = ctx.Lookup(*store, v);
            ++local_steps;
          }
        }
        steps.fetch_add(local_steps, std::memory_order_relaxed);
      });

  result.total_steps = steps.load();
  result.rank.resize(n);
  double total = 0.0;
  for (int64_t v = 0; v < n; ++v) {
    result.rank[v] = static_cast<double>(visits[v].load());
    total += result.rank[v];
  }
  for (double& r : result.rank) r /= total;
  return result;
}

std::vector<std::vector<NodeId>> AmpcSampleWalks(sim::Cluster& cluster,
                                                 const graph::Graph& g,
                                                 const WalkOptions& options) {
  const int64_t n = g.num_nodes();
  AMPC_CHECK_GT(options.walks_per_node, 0);
  AMPC_CHECK_GE(options.length, 0);
  std::vector<std::vector<NodeId>> walks(
      static_cast<size_t>(n) * options.walks_per_node);
  if (n == 0) return walks;

  std::unique_ptr<AdjStore> store = StageAdjacency(cluster, g);

  cluster.RunMapPhase(
      "SampleWalks", n, [&](int64_t item, sim::MachineContext& ctx) {
        const NodeId start = static_cast<NodeId>(item);
        for (int j = 0; j < options.walks_per_node; ++j) {
          Rng rng(Hash64(static_cast<uint64_t>(item) *
                                 options.walks_per_node +
                             j,
                         options.seed ^ 0x6465657077616c6bULL));
          std::vector<NodeId>& walk =
              walks[static_cast<size_t>(item) * options.walks_per_node + j];
          walk.reserve(options.length + 1);
          walk.push_back(start);
          const std::vector<NodeId>* adj = ctx.LookupLocal(*store, start);
          for (int s = 0; s < options.length; ++s) {
            if (adj == nullptr || adj->empty()) break;  // stranded
            const NodeId next = (*adj)[rng.NextBelow(adj->size())];
            walk.push_back(next);
            adj = ctx.Lookup(*store, next);
          }
        }
      });
  return walks;
}

}  // namespace ampc::core
