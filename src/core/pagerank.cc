#include "core/pagerank.h"

#include <atomic>
#include <memory>

#include "common/frontier.h"
#include "common/logging.h"
#include "common/random.h"
#include "common/timer.h"
#include "kv/sharded_store.h"

namespace ampc::core {
namespace {

using graph::NodeId;

using AdjStore = kv::ShardedStore<std::vector<NodeId>>;

// Stages the adjacency in the DHT: one shuffle + one cheap KV-write.
std::unique_ptr<AdjStore> StageAdjacency(sim::Cluster& cluster,
                                         const graph::Graph& g) {
  const int64_t n = g.num_nodes();
  WallTimer timer;
  int64_t bytes = 0;
  for (NodeId v = 0; v < n; ++v) bytes += g.AdjacencyBytes(v);
  cluster.AccountShuffle("WriteGraph", bytes, timer.Seconds());
  auto store = std::make_unique<AdjStore>(
      cluster.MakeStore<std::vector<NodeId>>(n));
  cluster.RunKvWritePhase("KV-Write", *store, n, [&](int64_t v) {
    const auto span = g.neighbors(static_cast<NodeId>(v));
    return std::vector<NodeId>(span.begin(), span.end());
  });
  return store;
}

// The walk's next hop from `v`, or kInvalidNode to stop. Dangling
// vertices teleport to a uniform vertex with probability `damping`
// (matching the exact oracle's dangling redistribution) and stop
// otherwise.
NodeId NextHop(const std::vector<NodeId>* adj, int64_t n, double damping,
               Rng& rng) {
  if (!rng.NextBernoulli(damping)) return graph::kInvalidNode;
  if (adj == nullptr || adj->empty()) {
    return static_cast<NodeId>(rng.NextBelow(static_cast<uint64_t>(n)));
  }
  return (*adj)[rng.NextBelow(adj->size())];
}

// One in-flight random walk of the batched frontier. Each worker
// advances all of its walks together (sim::DriveLookupPipelined): every
// adaptive step moves each active walk one hop and fetches the whole
// frontier's adjacencies as bounded sub-batch windows, keeping up to
// ClusterConfig::pipeline_depth windows in flight so their round trips
// overlap (one serialized trip per destination per depth windows)
// instead of one synchronous lookup per walk per hop. Walk frontiers
// collide on hub vertices, so the query cache serves repeated adjacency
// fetches locally — within a batch (duplicate frontier keys are fetched
// once) and across steps. Per-walk RNG streams are hash-seeded, so
// outputs match the scalar walk exactly.
struct WalkState {
  Rng rng;
  NodeId v;
  const std::vector<NodeId>* adj;
  bool done = false;
};

bool WalkDone(const WalkState& w) { return w.done; }
uint64_t WalkKey(const WalkState& w) { return w.v; }

// Frontier-engine decision for a walk phase (common/frontier.h). A
// walk phase is one frontier decision, not one per hop: every adaptive
// step's frontier is the (shrinking) walk population seeded from
// `frontier_size` distinct start vertices with `frontier_edges`
// out-edges, so the policy sees the phase's starting shape. Returns
// whether to run the phase in pull mode (Cluster::RunPullPhase +
// DrivePullSteps — adjacency fetches become local sweeps against the
// per-step bitmap broadcast instead of per-walk round trips); notes a
// sparse round otherwise. Always false — the legacy path, cost-model
// bit-identical — when the engine is off.
bool UsePullWalkPhase(sim::Cluster& cluster, int64_t frontier_size,
                      int64_t frontier_edges, int64_t num_vertices,
                      int64_t total_edges) {
  const sim::ClusterConfig::FrontierConfig& frontier_config =
      cluster.config().frontier;
  if (frontier_config.mode == FrontierMode::kSparse) return false;
  FrontierPolicy policy(frontier_config.mode, frontier_config.alpha,
                        frontier_config.beta, num_vertices, total_edges);
  if (policy.UseDense(frontier_size, frontier_edges)) return true;
  cluster.NoteSparseFrontierRound();
  return false;
}

}  // namespace

PageRankMcResult AmpcMonteCarloPageRank(sim::Cluster& cluster,
                                        const graph::Graph& g,
                                        const PageRankMcOptions& options) {
  const int64_t n = g.num_nodes();
  PageRankMcResult result;
  if (n == 0) return result;
  AMPC_CHECK_GT(options.walks_per_node, 0);

  std::unique_ptr<AdjStore> store = StageAdjacency(cluster, g);

  auto visits = std::make_unique<std::atomic<int64_t>[]>(n);
  for (int64_t v = 0; v < n; ++v) {
    visits[v].store(0, std::memory_order_relaxed);
  }
  std::atomic<int64_t> steps{0};

  // Walks start at every vertex, so the frontier covers the whole
  // graph — dense under the hybrid policy whenever the graph has edges.
  const bool pull =
      UsePullWalkPhase(cluster, n, g.num_arcs(), n, g.num_arcs());
  const auto walk_slice =
      [&](std::span<const int64_t> items, sim::MachineContext& ctx) {
        int64_t local_steps = 0;
        // One hop: count the visit, draw the next vertex, finish or move.
        auto advance = [&](WalkState& w) {
          visits[w.v].fetch_add(1, std::memory_order_relaxed);
          const NodeId next = NextHop(w.adj, n, options.damping, w.rng);
          if (next == graph::kInvalidNode) {
            w.done = true;
            return;
          }
          w.v = next;
          ++local_steps;
        };
        std::vector<WalkState> walks;
        walks.reserve(items.size() *
                      static_cast<size_t>(options.walks_per_node));
        for (const int64_t item : items) {
          const NodeId start = static_cast<NodeId>(item);
          const std::vector<NodeId>* adj = ctx.LookupLocal(*store, start);
          for (int j = 0; j < options.walks_per_node; ++j) {
            // Per-(vertex, walk) hash stream: identical output regardless
            // of which machine/worker runs the item.
            walks.push_back(WalkState{
                Rng(Hash64(static_cast<uint64_t>(item) *
                                   options.walks_per_node +
                               j,
                           options.seed ^ 0x7061676572616e6bULL)),
                start, adj});
            advance(walks.back());
          }
        }
        const auto resume = [&](WalkState& w,
                                const std::vector<NodeId>* adj) {
          w.adj = adj;
          advance(w);
        };
        if (pull) {
          sim::DrivePullSteps(ctx, *store, walks, WalkDone, WalkKey,
                              resume);
        } else {
          sim::DriveLookupPipelined(ctx, *store, walks, WalkDone, WalkKey,
                                    resume);
        }
        steps.fetch_add(local_steps, std::memory_order_relaxed);
      };
  if (pull) {
    cluster.RunPullPhase("RandomWalks", n, walk_slice);
  } else {
    cluster.RunBatchMapPhase("RandomWalks", n, walk_slice);
  }

  result.total_steps = steps.load();
  result.rank.resize(n);
  double total = 0.0;
  for (int64_t v = 0; v < n; ++v) {
    result.rank[v] = static_cast<double>(visits[v].load());
    total += result.rank[v];
  }
  for (double& r : result.rank) r /= total;
  return result;
}

PageRankMcResult AmpcPersonalizedPageRank(sim::Cluster& cluster,
                                          const graph::Graph& g,
                                          NodeId source,
                                          const PageRankMcOptions& options) {
  const int64_t n = g.num_nodes();
  PageRankMcResult result;
  if (n == 0) return result;
  AMPC_CHECK_LT(source, n);
  AMPC_CHECK_GT(options.walks_per_node, 0);

  std::unique_ptr<AdjStore> store = StageAdjacency(cluster, g);

  auto visits = std::make_unique<std::atomic<int64_t>[]>(n);
  for (int64_t v = 0; v < n; ++v) {
    visits[v].store(0, std::memory_order_relaxed);
  }
  std::atomic<int64_t> steps{0};

  // Every walk starts at the single source vertex: a one-vertex
  // frontier, which the hybrid policy keeps sparse (pull would sweep
  // whole shards to answer one hot key the cache already serves).
  const bool pull = UsePullWalkPhase(
      cluster, 1, static_cast<int64_t>(g.degree(source)), n, g.num_arcs());
  const auto walk_slice =
      [&](std::span<const int64_t> items, sim::MachineContext& ctx) {
        int64_t local_steps = 0;
        auto advance = [&](WalkState& w) {
          visits[w.v].fetch_add(1, std::memory_order_relaxed);
          if (!w.rng.NextBernoulli(options.damping)) {
            w.done = true;
            return;
          }
          // Dangling vertices return to the source (the personalized
          // teleport target), matching PersonalizedPageRankExact.
          const NodeId next = (w.adj == nullptr || w.adj->empty())
                                  ? source
                                  : (*w.adj)[w.rng.NextBelow(w.adj->size())];
          w.v = next;
          ++local_steps;
        };
        // Every walk starts at the source and begins with a (remote)
        // fetch of its adjacency, exactly as the scalar client did —
        // the driver ships the whole frontier's fetches as one batch
        // per adaptive step, the first step included.
        std::vector<WalkState> walks;
        walks.reserve(items.size() *
                      static_cast<size_t>(options.walks_per_node));
        for (const int64_t item : items) {
          for (int j = 0; j < options.walks_per_node; ++j) {
            walks.push_back(WalkState{
                Rng(Hash64(static_cast<uint64_t>(item) *
                                   options.walks_per_node +
                               j,
                           options.seed ^ 0x707072616e6bULL)),
                source, nullptr});
          }
        }
        const auto resume = [&](WalkState& w,
                                const std::vector<NodeId>* adj) {
          w.adj = adj;
          advance(w);
        };
        if (pull) {
          sim::DrivePullSteps(ctx, *store, walks, WalkDone, WalkKey,
                              resume);
        } else {
          sim::DriveLookupPipelined(ctx, *store, walks, WalkDone, WalkKey,
                                    resume);
        }
        steps.fetch_add(local_steps, std::memory_order_relaxed);
      };
  if (pull) {
    cluster.RunPullPhase("PersonalizedWalks", n, walk_slice);
  } else {
    cluster.RunBatchMapPhase("PersonalizedWalks", n, walk_slice);
  }

  result.total_steps = steps.load();
  result.rank.resize(n);
  double total = 0.0;
  for (int64_t v = 0; v < n; ++v) {
    result.rank[v] = static_cast<double>(visits[v].load());
    total += result.rank[v];
  }
  for (double& r : result.rank) r /= total;
  return result;
}

std::vector<std::vector<NodeId>> AmpcSampleWalks(sim::Cluster& cluster,
                                                 const graph::Graph& g,
                                                 const WalkOptions& options) {
  const int64_t n = g.num_nodes();
  AMPC_CHECK_GT(options.walks_per_node, 0);
  AMPC_CHECK_GE(options.length, 0);
  std::vector<std::vector<NodeId>> walks(
      static_cast<size_t>(n) * options.walks_per_node);
  if (n == 0) return walks;

  std::unique_ptr<AdjStore> store = StageAdjacency(cluster, g);

  // Like RandomWalks: walks start everywhere, so the frontier is dense
  // whenever the hybrid policy sees edges.
  const bool pull =
      UsePullWalkPhase(cluster, n, g.num_arcs(), n, g.num_arcs());
  const auto walk_slice =
      [&](std::span<const int64_t> items, sim::MachineContext& ctx) {
        struct SampleState {
          Rng rng;
          const std::vector<NodeId>* adj;
          std::vector<NodeId>* out;
          int remaining;
          NodeId cur = 0;
          bool done = false;
        };
        auto advance = [](SampleState& s) {
          if (s.remaining <= 0 || s.adj == nullptr || s.adj->empty()) {
            s.done = true;  // length reached or stranded
            return;
          }
          s.cur = (*s.adj)[s.rng.NextBelow(s.adj->size())];
          s.out->push_back(s.cur);
          --s.remaining;
        };
        std::vector<SampleState> states;
        states.reserve(items.size() *
                       static_cast<size_t>(options.walks_per_node));
        for (const int64_t item : items) {
          const NodeId start = static_cast<NodeId>(item);
          const std::vector<NodeId>* adj = ctx.LookupLocal(*store, start);
          for (int j = 0; j < options.walks_per_node; ++j) {
            std::vector<NodeId>& walk =
                walks[static_cast<size_t>(item) * options.walks_per_node +
                      j];
            walk.reserve(options.length + 1);
            walk.push_back(start);
            states.push_back(SampleState{
                Rng(Hash64(static_cast<uint64_t>(item) *
                                   options.walks_per_node +
                               j,
                           options.seed ^ 0x6465657077616c6bULL)),
                adj, &walk, options.length});
            advance(states.back());
          }
        }
        const auto done = [](const SampleState& s) { return s.done; };
        const auto key = [](const SampleState& s) {
          return static_cast<uint64_t>(s.cur);
        };
        const auto resume = [&](SampleState& s,
                                const std::vector<NodeId>* adj) {
          s.adj = adj;
          advance(s);
        };
        if (pull) {
          sim::DrivePullSteps(ctx, *store, states, done, key, resume);
        } else {
          sim::DriveLookupPipelined(ctx, *store, states, done, key, resume);
        }
      };
  if (pull) {
    cluster.RunPullPhase("SampleWalks", n, walk_slice);
  } else {
    cluster.RunBatchMapPhase("SampleWalks", n, walk_slice);
  }
  return walks;
}

}  // namespace ampc::core
