#include "core/kcore.h"

#include <algorithm>
#include <atomic>
#include <deque>
#include <memory>
#include <span>

#include "common/bitmap.h"
#include "common/frontier.h"
#include "common/logging.h"
#include "common/parallel.h"
#include "common/timer.h"
#include "kv/placement.h"
#include "kv/sharded_store.h"

namespace ampc::core {
namespace {

using graph::NodeId;

using AdjStore = kv::ShardedStore<std::vector<NodeId>>;
using ValueStore = kv::ShardedStore<int32_t>;

/// One worker slice of an h-index round in the sparse (push)
/// representation: the manual ticket pipeline over per-vertex neighbor
/// windows. Each vertex's h-index recomputation is one adaptive step
/// needing every neighbor's published value. The reads are independent
/// across the worker's vertices, so the worker pipelines them: each
/// vertex's neighbor list ships as sub-batch windows (one
/// LookupManyAsync ticket each, at most max_batch_keys keys), with up
/// to pipeline_depth tickets — usually spanning several vertices — in
/// flight at once so their round trips overlap. High-degree neighbors
/// are shared by many vertices of a machine, so their published values
/// are served from the query cache after the first fetch each round
/// (the fresh per-round store resets the cache). `on_result(item, h)`
/// receives each settled vertex's new h-index.
template <typename OnResult>
void HIndexSparseSlice(std::span<const int64_t> items,
                       sim::MachineContext& ctx, const AdjStore& adjacency,
                       const ValueStore& values, OnResult&& on_result) {
  struct Pending {
    kv::LookupTicket<int32_t> ticket;
    int64_t item;
    bool last_window;  // the final window of the item's list
  };
  const size_t depth = static_cast<size_t>(ctx.pipeline_depth());
  const int64_t max_keys = ctx.max_batch_keys();
  std::deque<Pending> inflight;
  // Neighbor values of the item currently settling. Tickets settle
  // FIFO and an item's windows are issued contiguously, so the
  // accumulator only ever holds one item's values.
  std::vector<int32_t> neighbor_values;
  auto settle_oldest = [&] {
    Pending pending = std::move(inflight.front());
    inflight.pop_front();
    const kv::LookupBatchResult<int32_t> batch = ctx.Await(pending.ticket);
    for (const int32_t* value : batch.values) {
      neighbor_values.push_back(value == nullptr ? 0 : *value);
    }
    if (pending.last_window) {
      on_result(pending.item, HIndex(neighbor_values));
      neighbor_values.clear();
    }
  };
  std::vector<uint64_t> keys;
  for (const int64_t item : items) {
    const NodeId v = static_cast<NodeId>(item);
    const std::vector<NodeId>* adj = ctx.LookupLocal(adjacency, v);
    const size_t degree = adj->size();
    const size_t window = max_keys > 0 ? static_cast<size_t>(max_keys)
                                       : std::max<size_t>(1, degree);
    // An isolated vertex still issues one (empty) window so its
    // h-index of zero settles through the same path.
    size_t begin = 0;
    do {
      const size_t end = std::min(degree, begin + window);
      keys.assign(adj->begin() + begin, adj->begin() + end);
      if (inflight.size() == depth) settle_oldest();
      inflight.push_back(Pending{
          ctx.LookupManyAsync(values, std::span<const uint64_t>(keys)),
          item, end >= degree});
      begin = end;
    } while (begin < degree);
  }
  while (!inflight.empty()) settle_oldest();
}

/// The dense (pull) counterpart: inside a RunPullPhase the neighbor
/// values were shipped by the round's bitmap broadcast + aggregate
/// exchange, so each vertex resolves its whole neighbor list as a
/// local sweep (MachineContext::PullMany — bytes, no round trips).
/// Values, and therefore every on_result, are identical to the sparse
/// slice's.
template <typename OnResult>
void HIndexPullSlice(std::span<const int64_t> items,
                     sim::MachineContext& ctx, const AdjStore& adjacency,
                     const ValueStore& values, OnResult&& on_result) {
  std::vector<uint64_t> keys;
  std::vector<int32_t> neighbor_values;
  for (const int64_t item : items) {
    const NodeId v = static_cast<NodeId>(item);
    const std::vector<NodeId>* adj = ctx.LookupLocal(adjacency, v);
    keys.clear();
    keys.reserve(adj->size());
    for (const NodeId neighbor : *adj) keys.push_back(neighbor);
    const kv::LookupBatchResult<int32_t> batch =
        ctx.PullMany(values, std::span<const uint64_t>(keys));
    neighbor_values.clear();
    for (const int32_t* value : batch.values) {
      neighbor_values.push_back(value == nullptr ? 0 : *value);
    }
    on_result(item, HIndex(neighbor_values));
  }
}

}  // namespace

int32_t HIndex(std::vector<int32_t>& values) {
  // Count-down histogram computation: h is the largest value with
  // |{x : x >= h}| >= h; sorting descending makes it the largest i+1
  // with values[i] >= i+1.
  std::sort(values.begin(), values.end(), std::greater<int32_t>());
  int32_t h = 0;
  for (size_t i = 0; i < values.size(); ++i) {
    if (values[i] >= static_cast<int32_t>(i) + 1) {
      h = static_cast<int32_t>(i) + 1;
    } else {
      break;
    }
  }
  return h;
}

KCoreResult AmpcKCore(sim::Cluster& cluster, const graph::Graph& g,
                      const KCoreOptions& options) {
  const int64_t n = g.num_nodes();

  // Stage the adjacency once: one shuffle plus one cheap KV-write round.
  WallTimer timer;
  int64_t adjacency_bytes = 0;
  for (NodeId v = 0; v < n; ++v) adjacency_bytes += g.AdjacencyBytes(v);
  cluster.AccountShuffle("WriteGraph", adjacency_bytes, timer.Seconds());
  AdjStore adjacency = cluster.MakeStore<std::vector<NodeId>>(n);
  cluster.RunKvWritePhase("KV-Write", adjacency, n, [&](int64_t v) {
    const auto span = g.neighbors(static_cast<NodeId>(v));
    return std::vector<NodeId>(span.begin(), span.end());
  });

  KCoreResult result;
  result.coreness.assign(n, 0);
  for (NodeId v = 0; v < n; ++v) {
    result.coreness[v] = static_cast<int32_t>(g.degree(v));
  }
  if (n == 0) return result;

  std::vector<int32_t> next(n, 0);
  const sim::ClusterConfig::FrontierConfig& frontier_config =
      cluster.config().frontier;
  if (frontier_config.mode == FrontierMode::kSparse) {
    // Legacy path: every vertex recomputes every round through the
    // push pipeline — the pre-frontier cost model, bit-identical.
    for (;;) {
      AMPC_CHECK_LT(result.iterations, options.max_iterations)
          << "h-index iteration did not converge";
      ++result.iterations;

      // Publish the current values into a fresh per-round store D_i
      // (cheap round), then recompute each vertex from its neighbors'
      // published values with DHT random access (map round, no
      // shuffle).
      ValueStore values = cluster.MakeStore<int32_t>(n);
      cluster.RunKvWritePhase("ValueWrite", values, n, [&](int64_t v) {
        return result.coreness[v];
      });

      std::atomic<int64_t> changed{0};
      cluster.RunBatchMapPhase(
          "HIndex", n,
          [&](std::span<const int64_t> items, sim::MachineContext& ctx) {
            HIndexSparseSlice(items, ctx, adjacency, values,
                              [&](int64_t item, int32_t h) {
                                next[item] = h;
                                if (h != result.coreness[item]) {
                                  changed.fetch_add(
                                      1, std::memory_order_relaxed);
                                }
                              });
          });
      result.coreness.swap(next);
      if (changed.load() == 0) break;
    }
    return result;
  }

  // Frontier-engine peeling (mode dense or hybrid): only *active*
  // vertices recompute — round 1 everyone, afterwards the vertices
  // with a neighbor whose coreness changed last round. A vertex whose
  // neighborhood did not change recomputes to the same h-index, so
  // skipping it is exact: the per-round changed sets, the iteration
  // count, and the final coreness are identical to the legacy loop's.
  // Each round the policy picks the representation from the active
  // set's size and out-edge mass: dense rounds pull (bitmap broadcast
  // + local shard sweep, no per-vertex trips), sparse rounds push
  // through the legacy pipeline over just the active list.
  FrontierPolicy policy(frontier_config.mode, frontier_config.alpha,
                        frontier_config.beta, n, g.num_arcs());
  SlidingQueue frontier(n);
  for (int64_t v = 0; v < n; ++v) frontier.Push(v);
  frontier.SlideWindow();
  while (!frontier.WindowEmpty()) {
    AMPC_CHECK_LT(result.iterations, options.max_iterations)
        << "h-index iteration did not converge";
    ++result.iterations;

    // Publish the full coreness vector exactly as the legacy loop does
    // (reads must see every neighbor's current value, active or not).
    ValueStore values = cluster.MakeStore<int32_t>(n);
    cluster.RunKvWritePhase("ValueWrite", values, n, [&](int64_t v) {
      return result.coreness[v];
    });

    const std::span<const int64_t> active = frontier.Window();
    int64_t frontier_edges = 0;
    for (const int64_t v : active) {
      frontier_edges += g.degree(static_cast<NodeId>(v));
    }
    AtomicBitmap changed(n);
    auto on_result = [&](int64_t item, int32_t h) {
      if (h != result.coreness[item]) {
        next[item] = h;
        changed.Set(item);
      }
    };
    if (policy.UseDense(static_cast<int64_t>(active.size()),
                        frontier_edges)) {
      cluster.RunPullPhase(
          "HIndex", n, active,
          [&](std::span<const int64_t> items, sim::MachineContext& ctx) {
            HIndexPullSlice(items, ctx, adjacency, values, on_result);
          });
    } else {
      cluster.NoteSparseFrontierRound();
      cluster.RunBatchMapPhase(
          "HIndex", n, active,
          [&](std::span<const int64_t> items, sim::MachineContext& ctx) {
            HIndexSparseSlice(items, ctx, adjacency, values, on_result);
          });
    }
    for (const int64_t v : active) {
      if (changed.Test(v)) result.coreness[v] = next[v];
    }

    // Next frontier: every vertex with at least one changed neighbor.
    // Per-chunk discoveries are concatenated in chunk order, so the
    // window's contents are schedule-independent.
    const std::vector<IndexChunk> chunks = SplitIndexChunks(
        0, n, 2048, DefaultChunksForPool(cluster.pool()));
    std::vector<std::vector<int64_t>> discovered(chunks.size());
    ParallelForEachChunk(cluster.pool(), chunks, [&](int64_t c) {
      for (int64_t u = chunks[c].begin; u < chunks[c].end; ++u) {
        for (const NodeId neighbor : g.neighbors(static_cast<NodeId>(u))) {
          if (changed.Test(neighbor)) {
            discovered[c].push_back(u);
            break;
          }
        }
      }
    });
    for (const std::vector<int64_t>& part : discovered) {
      for (const int64_t u : part) frontier.Push(u);
    }
    frontier.SlideWindow();
  }
  return result;
}

}  // namespace ampc::core
