#include "core/kcore.h"

#include <algorithm>
#include <atomic>
#include <memory>

#include "common/logging.h"
#include "common/timer.h"
#include "kv/sharded_store.h"

namespace ampc::core {
namespace {

using graph::NodeId;

using AdjStore = kv::ShardedStore<std::vector<NodeId>>;
using ValueStore = kv::ShardedStore<int32_t>;

}  // namespace

int32_t HIndex(std::vector<int32_t>& values) {
  // Count-down histogram computation: h is the largest value with
  // |{x : x >= h}| >= h; sorting descending makes it the largest i+1
  // with values[i] >= i+1.
  std::sort(values.begin(), values.end(), std::greater<int32_t>());
  int32_t h = 0;
  for (size_t i = 0; i < values.size(); ++i) {
    if (values[i] >= static_cast<int32_t>(i) + 1) {
      h = static_cast<int32_t>(i) + 1;
    } else {
      break;
    }
  }
  return h;
}

KCoreResult AmpcKCore(sim::Cluster& cluster, const graph::Graph& g,
                      const KCoreOptions& options) {
  const int64_t n = g.num_nodes();

  // Stage the adjacency once: one shuffle plus one cheap KV-write round.
  WallTimer timer;
  int64_t adjacency_bytes = 0;
  for (NodeId v = 0; v < n; ++v) adjacency_bytes += g.AdjacencyBytes(v);
  cluster.AccountShuffle("WriteGraph", adjacency_bytes, timer.Seconds());
  AdjStore adjacency = cluster.MakeStore<std::vector<NodeId>>(n);
  cluster.RunKvWritePhase("KV-Write", adjacency, n, [&](int64_t v) {
    const auto span = g.neighbors(static_cast<NodeId>(v));
    return std::vector<NodeId>(span.begin(), span.end());
  });

  KCoreResult result;
  result.coreness.assign(n, 0);
  for (NodeId v = 0; v < n; ++v) {
    result.coreness[v] = static_cast<int32_t>(g.degree(v));
  }
  if (n == 0) return result;

  std::vector<int32_t> next(n, 0);
  for (;;) {
    AMPC_CHECK_LT(result.iterations, options.max_iterations)
        << "h-index iteration did not converge";
    ++result.iterations;

    // Publish the current values into a fresh per-round store D_i
    // (cheap round), then recompute each vertex from its neighbors'
    // published values with DHT random access (map round, no shuffle).
    ValueStore values = cluster.MakeStore<int32_t>(n);
    cluster.RunKvWritePhase("ValueWrite", values, n, [&](int64_t v) {
      return result.coreness[v];
    });

    std::atomic<int64_t> changed{0};
    cluster.RunMapPhase(
        "HIndex", n, [&](int64_t item, sim::MachineContext& ctx) {
          const NodeId v = static_cast<NodeId>(item);
          const std::vector<NodeId>* adj = ctx.LookupLocal(adjacency, v);
          // The h-index recomputation is one adaptive step needing every
          // neighbor's published value: fetch them as one batch (one
          // round trip per owning machine) instead of degree(v)
          // synchronous lookups. High-degree neighbors are shared by
          // many vertices of a machine, so their published values are
          // served from the query cache after the first fetch each
          // round (the fresh per-round store resets the cache).
          std::vector<uint64_t> keys(adj->begin(), adj->end());
          const auto batch = ctx.LookupMany(values, keys);
          std::vector<int32_t> neighbor_values;
          neighbor_values.reserve(batch.values.size());
          for (const int32_t* value : batch.values) {
            neighbor_values.push_back(value == nullptr ? 0 : *value);
          }
          next[item] = HIndex(neighbor_values);
          if (next[item] != result.coreness[item]) {
            changed.fetch_add(1, std::memory_order_relaxed);
          }
        });
    result.coreness.swap(next);
    if (changed.load() == 0) break;
  }
  return result;
}

}  // namespace ampc::core
