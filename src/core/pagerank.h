// AMPC random walks and Monte-Carlo PageRank — the Section 5.7
// "Random-walk and Embedding" extension study ("The AMPC model can
// potentially help accelerate random-walk based problems, such as
// PageRank and Personalized PageRank [...] since it efficiently supports
// random access").
//
// The adjacency is staged in the DHT once (1 shuffle). After that a walk
// is just a chain of KV lookups inside one map round — the step-by-step
// shuffle an MPC implementation needs (one per walk step or power
// iteration; see baselines/mpc_pagerank.h) disappears entirely.
//
//  * AmpcMonteCarloPageRank — Bahmani-et-al-style estimator [13]: R
//    restart-terminated walks start from every vertex; the visit
//    frequency scaled by the restart probability estimates PageRank.
//  * AmpcSampleWalks — fixed-length walk corpus (the DeepWalk/LINE/
//    NetSMF [58, 65, 59] ingestion pattern the paper names).
//
// Walk randomness derives from (seed, start vertex, walk index) hash
// streams, so outputs are independent of machine scheduling.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "sim/cluster.h"

namespace ampc::core {

struct PageRankMcOptions {
  uint64_t seed = 42;
  /// Damping factor (walk continues with this probability per step).
  double damping = 0.85;
  /// Walks started per vertex. The L1 error of the estimate shrinks as
  /// O(1 / sqrt(walks_per_node)).
  int walks_per_node = 16;
};

struct PageRankMcResult {
  /// Estimated PageRank, normalized to sum to 1 (n > 0).
  std::vector<double> rank;
  /// Total walk steps taken (expected ~ n * walks_per_node / (1 - d)).
  int64_t total_steps = 0;
};

/// Monte-Carlo PageRank over the DHT-resident graph.
PageRankMcResult AmpcMonteCarloPageRank(sim::Cluster& cluster,
                                        const graph::Graph& g,
                                        const PageRankMcOptions& options = {});

/// Monte-Carlo Personalized PageRank from `source` (paper §5.7 names
/// Personalized PageRank [13] as an AMPC target): every walk starts at
/// the source, and dangling vertices return there. Same DHT staging as
/// the global estimator. Each of the num_nodes map items contributes
/// walks_per_node walks, so num_nodes * walks_per_node walks total.
PageRankMcResult AmpcPersonalizedPageRank(sim::Cluster& cluster,
                                          const graph::Graph& g,
                                          graph::NodeId source,
                                          const PageRankMcOptions& options =
                                              {});

struct WalkOptions {
  uint64_t seed = 42;
  /// Steps per walk (walk holds length + 1 vertices).
  int length = 8;
  /// Walks started per vertex.
  int walks_per_node = 1;
};

/// A fixed-length random-walk corpus: walks[i] is the vertex sequence of
/// the i-th walk (walks are grouped by start vertex, then walk index).
/// Walks stop early at isolated vertices.
std::vector<std::vector<graph::NodeId>> AmpcSampleWalks(
    sim::Cluster& cluster, const graph::Graph& g,
    const WalkOptions& options = {});

}  // namespace ampc::core
