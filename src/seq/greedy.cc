#include "seq/greedy.h"

#include <algorithm>
#include <numeric>
#include <unordered_map>

#include "common/logging.h"

namespace ampc::seq {

using graph::Edge;
using graph::EdgeId;
using graph::EdgeList;
using graph::Graph;
using graph::kInvalidNode;
using graph::NodeId;
using graph::WeightedEdgeList;

std::vector<uint8_t> GreedyMis(const Graph& g, std::span<const uint64_t> rank) {
  const int64_t n = g.num_nodes();
  AMPC_CHECK_EQ(static_cast<int64_t>(rank.size()), n);
  std::vector<NodeId> order(n);
  std::iota(order.begin(), order.end(), NodeId{0});
  std::sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
    if (rank[a] != rank[b]) return rank[a] < rank[b];
    return a < b;
  });
  std::vector<uint8_t> in_mis(n, 0);
  std::vector<uint8_t> blocked(n, 0);
  for (NodeId v : order) {
    if (blocked[v]) continue;
    in_mis[v] = 1;
    for (NodeId u : g.neighbors(v)) blocked[u] = 1;
  }
  return in_mis;
}

MatchingResult GreedyMaximalMatching(const EdgeList& list,
                                     std::span<const uint64_t> edge_rank) {
  AMPC_CHECK_EQ(edge_rank.size(), list.edges.size());
  std::vector<uint32_t> order(list.edges.size());
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    if (edge_rank[a] != edge_rank[b]) return edge_rank[a] < edge_rank[b];
    return a < b;
  });
  MatchingResult result;
  result.partner.assign(list.num_nodes, kInvalidNode);
  for (uint32_t idx : order) {
    const Edge& e = list.edges[idx];
    if (e.u == e.v) continue;
    if (result.partner[e.u] == kInvalidNode &&
        result.partner[e.v] == kInvalidNode) {
      result.partner[e.u] = e.v;
      result.partner[e.v] = e.u;
      result.edges.push_back(static_cast<EdgeId>(idx));
    }
  }
  std::sort(result.edges.begin(), result.edges.end());
  return result;
}

MatchingResult GreedyWeightMatching(const WeightedEdgeList& list) {
  std::vector<uint32_t> order(list.edges.size());
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    const auto& ea = list.edges[a];
    const auto& eb = list.edges[b];
    if (ea.w != eb.w) return ea.w > eb.w;
    return ea.id < eb.id;
  });
  MatchingResult result;
  result.partner.assign(list.num_nodes, kInvalidNode);
  for (uint32_t idx : order) {
    const auto& e = list.edges[idx];
    if (e.u == e.v) continue;
    if (result.partner[e.u] == kInvalidNode &&
        result.partner[e.v] == kInvalidNode) {
      result.partner[e.u] = e.v;
      result.partner[e.v] = e.u;
      result.edges.push_back(e.id);
    }
  }
  std::sort(result.edges.begin(), result.edges.end());
  return result;
}

bool IsIndependentSet(const Graph& g, std::span<const uint8_t> in_set) {
  for (int64_t v = 0; v < g.num_nodes(); ++v) {
    if (!in_set[v]) continue;
    for (NodeId u : g.neighbors(static_cast<NodeId>(v))) {
      if (in_set[u] && u != static_cast<NodeId>(v)) return false;
    }
  }
  return true;
}

bool IsMaximalIndependentSet(const Graph& g, std::span<const uint8_t> in_set) {
  if (!IsIndependentSet(g, in_set)) return false;
  for (int64_t v = 0; v < g.num_nodes(); ++v) {
    if (in_set[v]) continue;
    bool has_in_neighbor = false;
    for (NodeId u : g.neighbors(static_cast<NodeId>(v))) {
      if (in_set[u]) {
        has_in_neighbor = true;
        break;
      }
    }
    if (!has_in_neighbor) return false;
  }
  return true;
}

bool IsMatching(const EdgeList& list, const std::vector<EdgeId>& edge_ids) {
  std::vector<uint8_t> used(list.num_nodes, 0);
  for (EdgeId id : edge_ids) {
    if (id >= list.edges.size()) return false;
    const Edge& e = list.edges[id];
    if (e.u == e.v) return false;
    if (used[e.u] || used[e.v]) return false;
    used[e.u] = used[e.v] = 1;
  }
  return true;
}

bool IsMaximalMatching(const EdgeList& list,
                       const std::vector<EdgeId>& edge_ids) {
  if (!IsMatching(list, edge_ids)) return false;
  std::vector<uint8_t> used(list.num_nodes, 0);
  for (EdgeId id : edge_ids) {
    used[list.edges[id].u] = used[list.edges[id].v] = 1;
  }
  for (const Edge& e : list.edges) {
    if (e.u != e.v && !used[e.u] && !used[e.v]) return false;
  }
  return true;
}

std::vector<NodeId> VertexCoverFromMatching(const EdgeList& list,
                                            const MatchingResult& matching) {
  std::vector<NodeId> cover;
  for (EdgeId id : matching.edges) {
    cover.push_back(list.edges[id].u);
    cover.push_back(list.edges[id].v);
  }
  std::sort(cover.begin(), cover.end());
  cover.erase(std::unique(cover.begin(), cover.end()), cover.end());
  return cover;
}

bool IsVertexCover(const EdgeList& list, const std::vector<NodeId>& cover) {
  std::vector<uint8_t> in_cover(list.num_nodes, 0);
  for (NodeId v : cover) in_cover[v] = 1;
  for (const Edge& e : list.edges) {
    if (e.u != e.v && !in_cover[e.u] && !in_cover[e.v]) return false;
  }
  return true;
}

}  // namespace ampc::seq
