#include "seq/pagerank.h"

#include <cmath>

#include "common/logging.h"

namespace ampc::seq {

PageRankResult PageRankExact(const graph::Graph& g,
                             const PageRankOptions& options) {
  const int64_t n = g.num_nodes();
  PageRankResult result;
  if (n == 0) return result;

  const double d = options.damping;
  std::vector<double> rank(n, 1.0 / static_cast<double>(n));
  std::vector<double> next(n, 0.0);
  for (; result.iterations < options.max_iterations; ++result.iterations) {
    double dangling = 0.0;
    for (graph::NodeId v = 0; v < n; ++v) {
      if (g.degree(v) == 0) dangling += rank[v];
    }
    const double base =
        ((1.0 - d) + d * dangling) / static_cast<double>(n);
    for (graph::NodeId v = 0; v < n; ++v) next[v] = base;
    for (graph::NodeId v = 0; v < n; ++v) {
      if (g.degree(v) == 0) continue;
      const double share = d * rank[v] / static_cast<double>(g.degree(v));
      for (const graph::NodeId u : g.neighbors(v)) next[u] += share;
    }
    double delta = 0.0;
    for (graph::NodeId v = 0; v < n; ++v) {
      delta += std::abs(next[v] - rank[v]);
    }
    rank.swap(next);
    if (delta < options.tolerance) {
      ++result.iterations;
      break;
    }
  }
  result.rank = std::move(rank);
  return result;
}

PageRankResult PersonalizedPageRankExact(const graph::Graph& g,
                                         graph::NodeId source,
                                         const PageRankOptions& options) {
  const int64_t n = g.num_nodes();
  PageRankResult result;
  if (n == 0) return result;
  AMPC_CHECK_LT(source, n);

  const double d = options.damping;
  std::vector<double> rank(n, 0.0);
  rank[source] = 1.0;
  std::vector<double> next(n, 0.0);
  for (; result.iterations < options.max_iterations; ++result.iterations) {
    double dangling = 0.0;
    for (graph::NodeId v = 0; v < n; ++v) {
      if (g.degree(v) == 0) dangling += rank[v];
    }
    std::fill(next.begin(), next.end(), 0.0);
    next[source] = (1.0 - d) + d * dangling;
    for (graph::NodeId v = 0; v < n; ++v) {
      if (g.degree(v) == 0) continue;
      const double share = d * rank[v] / static_cast<double>(g.degree(v));
      for (const graph::NodeId u : g.neighbors(v)) next[u] += share;
    }
    double delta = 0.0;
    for (graph::NodeId v = 0; v < n; ++v) {
      delta += std::abs(next[v] - rank[v]);
    }
    rank.swap(next);
    if (delta < options.tolerance) {
      ++result.iterations;
      break;
    }
  }
  result.rank = std::move(rank);
  return result;
}

double L1Distance(const std::vector<double>& a, const std::vector<double>& b) {
  AMPC_CHECK_EQ(a.size(), b.size());
  double total = 0.0;
  for (size_t i = 0; i < a.size(); ++i) total += std::abs(a[i] - b[i]);
  return total;
}

}  // namespace ampc::seq
