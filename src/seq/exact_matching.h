// Exact maximum (weight) matching for small graphs, by dynamic programming
// over vertex subsets. These are test oracles for the Corollary 4.1
// approximation algorithms: exponential in num_nodes, so callers must keep
// n <= kExactMatchingMaxNodes (checked).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace ampc::seq {

/// Largest graph the subset DP accepts (2^n states).
inline constexpr int64_t kExactMatchingMaxNodes = 24;

/// Size of a maximum-cardinality matching of `list` (general graphs,
/// exact). Requires list.num_nodes <= kExactMatchingMaxNodes.
int64_t ExactMaximumMatchingSize(const graph::EdgeList& list);

/// Total weight of a maximum-weight matching of `list` (general graphs,
/// exact; negative-weight edges are never used). Requires
/// list.num_nodes <= kExactMatchingMaxNodes.
graph::Weight ExactMaximumWeightMatching(const graph::WeightedEdgeList& list);

}  // namespace ampc::seq
