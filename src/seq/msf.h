// Sequential minimum-spanning-forest algorithms. Weights are totally
// ordered by (weight, edge id), which makes the MSF unique — distributed
// and sequential implementations are compared for exact edge-set equality.
#pragma once

#include <vector>

#include "graph/graph.h"

namespace ampc::seq {

/// Comparator defining the total order on edges used across the library.
inline bool EdgeLess(const graph::WeightedEdge& a,
                     const graph::WeightedEdge& b) {
  if (a.w != b.w) return a.w < b.w;
  return a.id < b.id;
}

/// Kruskal's algorithm; returns the MSF as sorted edge ids.
std::vector<graph::EdgeId> KruskalMsf(const graph::WeightedEdgeList& list);

/// Prim's algorithm run from every component; returns sorted edge ids.
/// Used as an independent cross-check of Kruskal in tests.
std::vector<graph::EdgeId> PrimMsf(const graph::WeightedGraph& g);

/// Sequential Borůvka; returns sorted edge ids.
std::vector<graph::EdgeId> BoruvkaMsf(const graph::WeightedEdgeList& list);

/// Sum of weights of the given edges.
graph::Weight TotalWeight(const graph::WeightedEdgeList& list,
                          const std::vector<graph::EdgeId>& edge_ids);

/// True if `edge_ids` form a spanning forest of `list`'s graph: acyclic
/// and connecting every pair of vertices that the graph connects.
bool IsSpanningForest(const graph::WeightedEdgeList& list,
                      const std::vector<graph::EdgeId>& edge_ids);

}  // namespace ampc::seq
