// Sequential k-core decomposition (Batagelj–Zaversnik bucket peeling,
// O(m)) — the ground-truth oracle for the AMPC/MPC core decompositions of
// the Section 5.7 extension study.
//
// The coreness of a vertex v is the largest k such that v belongs to a
// subgraph whose minimum degree is at least k (the k-core). The
// degeneracy of the graph is the maximum coreness.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace ampc::seq {

/// Exact coreness of every vertex.
std::vector<int32_t> CoreDecomposition(const graph::Graph& g);

/// Vertices of the k-core: the maximal subgraph with min degree >= k
/// (equivalently, coreness >= k). Sorted ascending.
std::vector<graph::NodeId> KCoreVertices(const std::vector<int32_t>& coreness,
                                         int32_t k);

/// Max coreness (0 for an empty graph).
int32_t Degeneracy(const std::vector<int32_t>& coreness);

}  // namespace ampc::seq
