// Sequential lexicographically-first greedy MIS and maximal matching.
//
// These are the ground-truth oracles: given the same random priorities,
// the paper's AMPC and MPC algorithms both compute exactly the greedy
// solution for the corresponding permutation ("By specifying the same
// source of randomness, both the MPC and AMPC algorithms compute the same
// MIS", Section 5.3), so tests compare distributed outputs against these
// byte-for-byte.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.h"

namespace ampc::seq {

/// Greedy MIS over the vertex order induced by ascending `rank` (ties by
/// vertex id). Returns an indicator vector.
std::vector<uint8_t> GreedyMis(const graph::Graph& g,
                               std::span<const uint64_t> rank);

/// Result of a maximal matching computation.
struct MatchingResult {
  /// Matched edge ids, sorted.
  std::vector<graph::EdgeId> edges;
  /// partner[v] = matched neighbor of v, or kInvalidNode.
  std::vector<graph::NodeId> partner;
};

/// Greedy maximal matching over the edge order induced by ascending
/// `edge_rank` (indexed by position in list.edges; ties by edge id).
MatchingResult GreedyMaximalMatching(const graph::EdgeList& list,
                                     std::span<const uint64_t> edge_rank);

/// Greedy matching by descending weight (ties: ascending id): the classic
/// 2-approximation to maximum weight matching (Corollary 4.1).
MatchingResult GreedyWeightMatching(const graph::WeightedEdgeList& list);

/// Validation helpers for property tests.
bool IsIndependentSet(const graph::Graph& g, std::span<const uint8_t> in_set);
bool IsMaximalIndependentSet(const graph::Graph& g,
                             std::span<const uint8_t> in_set);
bool IsMatching(const graph::EdgeList& list,
                const std::vector<graph::EdgeId>& edge_ids);
bool IsMaximalMatching(const graph::EdgeList& list,
                       const std::vector<graph::EdgeId>& edge_ids);

/// Endpoints of a maximal matching form a 2-approximate minimum vertex
/// cover (Corollary 4.1); returns the sorted cover.
std::vector<graph::NodeId> VertexCoverFromMatching(
    const graph::EdgeList& list, const MatchingResult& matching);

/// True if `cover` covers every edge.
bool IsVertexCover(const graph::EdgeList& list,
                   const std::vector<graph::NodeId>& cover);

}  // namespace ampc::seq
