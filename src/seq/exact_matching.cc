#include "seq/exact_matching.h"

#include <algorithm>
#include <bit>
#include <limits>

#include "common/logging.h"

namespace ampc::seq {
namespace {

using graph::NodeId;
using graph::Weight;

// Adjacency bitmasks for the subset DP. Self-loops are dropped (they can
// never be matched); parallel edges collapse to the best weight.
std::vector<std::vector<Weight>> WeightMatrix(
    const graph::WeightedEdgeList& list) {
  const int64_t n = list.num_nodes;
  std::vector<std::vector<Weight>> w(
      n, std::vector<Weight>(n, -std::numeric_limits<Weight>::infinity()));
  for (const graph::WeightedEdge& e : list.edges) {
    if (e.u == e.v) continue;
    w[e.u][e.v] = std::max(w[e.u][e.v], e.w);
    w[e.v][e.u] = w[e.u][e.v];
  }
  return w;
}

}  // namespace

int64_t ExactMaximumMatchingSize(const graph::EdgeList& list) {
  const int64_t n = list.num_nodes;
  AMPC_CHECK_LE(n, kExactMatchingMaxNodes);
  std::vector<uint32_t> adj(n, 0);
  for (const graph::Edge& e : list.edges) {
    if (e.u == e.v) continue;
    adj[e.u] |= 1u << e.v;
    adj[e.v] |= 1u << e.u;
  }
  // f[S] = max matching size within the induced subgraph on S. Processing
  // the lowest set vertex first makes every state reachable exactly once.
  std::vector<int8_t> f(size_t{1} << n, 0);
  for (uint32_t s = 1; s < (1u << n); ++s) {
    const int v = std::countr_zero(s);
    const uint32_t rest = s & (s - 1);  // s without v
    int8_t best = f[rest];              // v stays unmatched
    uint32_t candidates = adj[v] & rest;
    while (candidates != 0) {
      const int u = std::countr_zero(candidates);
      candidates &= candidates - 1;
      best = std::max<int8_t>(best,
                              static_cast<int8_t>(1 + f[rest & ~(1u << u)]));
    }
    f[s] = best;
  }
  return f[(size_t{1} << n) - 1];
}

Weight ExactMaximumWeightMatching(const graph::WeightedEdgeList& list) {
  const int64_t n = list.num_nodes;
  AMPC_CHECK_LE(n, kExactMatchingMaxNodes);
  const std::vector<std::vector<Weight>> w = WeightMatrix(list);
  std::vector<Weight> f(size_t{1} << n, 0);
  for (uint32_t s = 1; s < (1u << n); ++s) {
    const int v = std::countr_zero(s);
    const uint32_t rest = s & (s - 1);
    Weight best = f[rest];
    uint32_t candidates = rest;
    while (candidates != 0) {
      const int u = std::countr_zero(candidates);
      candidates &= candidates - 1;
      if (w[v][u] > 0) best = std::max(best, w[v][u] + f[rest & ~(1u << u)]);
    }
    f[s] = best;
  }
  return f[(size_t{1} << n) - 1];
}

}  // namespace ampc::seq
