// Sequential PageRank by power iteration — the exact oracle for the
// Section 5.7 random-walk extension study. Uses the standard damping
// formulation on the symmetrized graph: with probability `damping` the
// surfer follows a uniform incident edge, otherwise it teleports to a
// uniform vertex; the rank mass of isolated (dangling) vertices is
// redistributed uniformly each step.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace ampc::seq {

struct PageRankOptions {
  /// Damping factor (probability of following an edge).
  double damping = 0.85;
  /// Stop when the L1 change between iterations drops below this.
  double tolerance = 1e-12;
  /// Hard iteration cap.
  int max_iterations = 1000;
};

struct PageRankResult {
  /// rank[v], summing to 1 over all vertices (n > 0).
  std::vector<double> rank;
  /// Power iterations executed.
  int iterations = 0;
};

/// Exact PageRank of an undirected graph.
PageRankResult PageRankExact(const graph::Graph& g,
                             const PageRankOptions& options = {});

/// Exact Personalized PageRank: teleports (and the mass of dangling
/// vertices) return to `source` instead of a uniform vertex.
PageRankResult PersonalizedPageRankExact(const graph::Graph& g,
                                         graph::NodeId source,
                                         const PageRankOptions& options = {});

/// L1 distance between two distributions (test/benchmark helper).
double L1Distance(const std::vector<double>& a, const std::vector<double>& b);

}  // namespace ampc::seq
