// Disjoint-set union with path compression and union by rank.
#pragma once

#include <cstdint>
#include <numeric>
#include <vector>

namespace ampc::seq {

class UnionFind {
 public:
  explicit UnionFind(int64_t n) : parent_(n), rank_(n, 0) {
    std::iota(parent_.begin(), parent_.end(), int64_t{0});
  }

  int64_t Find(int64_t x) {
    int64_t root = x;
    while (parent_[root] != root) root = parent_[root];
    while (parent_[x] != root) {
      int64_t next = parent_[x];
      parent_[x] = root;
      x = next;
    }
    return root;
  }

  /// Unions the sets of a and b; returns false if already joined.
  bool Union(int64_t a, int64_t b) {
    a = Find(a);
    b = Find(b);
    if (a == b) return false;
    if (rank_[a] < rank_[b]) std::swap(a, b);
    parent_[b] = a;
    if (rank_[a] == rank_[b]) ++rank_[a];
    return true;
  }

  bool Connected(int64_t a, int64_t b) { return Find(a) == Find(b); }

  int64_t size() const { return static_cast<int64_t>(parent_.size()); }

 private:
  std::vector<int64_t> parent_;
  std::vector<uint8_t> rank_;
};

}  // namespace ampc::seq
