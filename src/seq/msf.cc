#include "seq/msf.h"

#include <algorithm>
#include <numeric>
#include <queue>
#include <unordered_map>

#include "common/logging.h"
#include "seq/union_find.h"

namespace ampc::seq {

using graph::EdgeId;
using graph::NodeId;
using graph::Weight;
using graph::WeightedEdge;
using graph::WeightedEdgeList;
using graph::WeightedGraph;

std::vector<EdgeId> KruskalMsf(const WeightedEdgeList& list) {
  std::vector<uint32_t> order(list.edges.size());
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    return EdgeLess(list.edges[a], list.edges[b]);
  });
  UnionFind uf(list.num_nodes);
  std::vector<EdgeId> msf;
  for (uint32_t idx : order) {
    const WeightedEdge& e = list.edges[idx];
    if (e.u != e.v && uf.Union(e.u, e.v)) msf.push_back(e.id);
  }
  std::sort(msf.begin(), msf.end());
  return msf;
}

std::vector<EdgeId> PrimMsf(const WeightedGraph& g) {
  const int64_t n = g.num_nodes();
  std::vector<uint8_t> visited(n, 0);
  std::vector<EdgeId> msf;

  struct HeapEdge {
    Weight w;
    EdgeId id;
    NodeId to;
    bool operator>(const HeapEdge& o) const {
      if (w != o.w) return w > o.w;
      return id > o.id;
    }
  };
  std::priority_queue<HeapEdge, std::vector<HeapEdge>, std::greater<>> heap;

  for (int64_t start = 0; start < n; ++start) {
    if (visited[start]) continue;
    visited[start] = 1;
    auto push_edges = [&](NodeId v) {
      auto nbrs = g.neighbors(v);
      auto ws = g.weights(v);
      auto ids = g.edge_ids(v);
      for (size_t i = 0; i < nbrs.size(); ++i) {
        if (!visited[nbrs[i]]) heap.push(HeapEdge{ws[i], ids[i], nbrs[i]});
      }
    };
    push_edges(static_cast<NodeId>(start));
    while (!heap.empty()) {
      HeapEdge top = heap.top();
      heap.pop();
      if (visited[top.to]) continue;
      visited[top.to] = 1;
      msf.push_back(top.id);
      push_edges(top.to);
    }
  }
  std::sort(msf.begin(), msf.end());
  msf.erase(std::unique(msf.begin(), msf.end()), msf.end());
  return msf;
}

std::vector<EdgeId> BoruvkaMsf(const WeightedEdgeList& list) {
  const int64_t n = list.num_nodes;
  UnionFind uf(n);
  std::vector<EdgeId> msf;
  int64_t components = n;
  bool progress = true;
  while (progress && components > 1) {
    progress = false;
    // cheapest[root] = index of the lightest edge leaving that component.
    std::unordered_map<int64_t, uint32_t> cheapest;
    for (uint32_t i = 0; i < list.edges.size(); ++i) {
      const WeightedEdge& e = list.edges[i];
      const int64_t ru = uf.Find(e.u);
      const int64_t rv = uf.Find(e.v);
      if (ru == rv) continue;
      for (int64_t root : {ru, rv}) {
        auto it = cheapest.find(root);
        if (it == cheapest.end() ||
            EdgeLess(e, list.edges[it->second])) {
          cheapest[root] = i;
        }
      }
    }
    for (const auto& [root, idx] : cheapest) {
      const WeightedEdge& e = list.edges[idx];
      if (uf.Union(e.u, e.v)) {
        msf.push_back(e.id);
        --components;
        progress = true;
      }
    }
  }
  std::sort(msf.begin(), msf.end());
  return msf;
}

Weight TotalWeight(const WeightedEdgeList& list,
                   const std::vector<EdgeId>& edge_ids) {
  // Edge ids are indices into list.edges for lists built by this library;
  // fall back to a lookup table otherwise.
  std::unordered_map<EdgeId, const WeightedEdge*> by_id;
  by_id.reserve(list.edges.size());
  for (const WeightedEdge& e : list.edges) by_id[e.id] = &e;
  Weight total = 0;
  for (EdgeId id : edge_ids) {
    auto it = by_id.find(id);
    AMPC_CHECK(it != by_id.end()) << "unknown edge id " << id;
    total += it->second->w;
  }
  return total;
}

bool IsSpanningForest(const WeightedEdgeList& list,
                      const std::vector<EdgeId>& edge_ids) {
  std::unordered_map<EdgeId, const WeightedEdge*> by_id;
  for (const WeightedEdge& e : list.edges) by_id[e.id] = &e;

  UnionFind forest(list.num_nodes);
  for (EdgeId id : edge_ids) {
    auto it = by_id.find(id);
    if (it == by_id.end()) return false;
    if (!forest.Union(it->second->u, it->second->v)) return false;  // cycle
  }
  // Spanning: forest connects whatever the graph connects.
  UnionFind all(list.num_nodes);
  for (const WeightedEdge& e : list.edges) all.Union(e.u, e.v);
  for (const WeightedEdge& e : list.edges) {
    if (all.Connected(e.u, e.v) && !forest.Connected(e.u, e.v)) return false;
  }
  return true;
}

}  // namespace ampc::seq
