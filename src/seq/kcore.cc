#include "seq/kcore.h"

#include <algorithm>

namespace ampc::seq {

std::vector<int32_t> CoreDecomposition(const graph::Graph& g) {
  const int64_t n = g.num_nodes();
  std::vector<int32_t> deg(n);
  int32_t max_deg = 0;
  for (int64_t v = 0; v < n; ++v) {
    deg[v] = static_cast<int32_t>(g.degree(static_cast<graph::NodeId>(v)));
    max_deg = std::max(max_deg, deg[v]);
  }

  // Bucket sort vertices by degree, then peel in ascending order while
  // keeping buckets current — O(m) total.
  std::vector<int64_t> bucket_start(max_deg + 2, 0);
  for (int64_t v = 0; v < n; ++v) ++bucket_start[deg[v] + 1];
  for (int32_t d = 0; d <= max_deg; ++d) {
    bucket_start[d + 1] += bucket_start[d];
  }
  std::vector<graph::NodeId> order(n);
  std::vector<int64_t> pos(n);
  {
    std::vector<int64_t> cursor(bucket_start.begin(),
                                bucket_start.end() - 1);
    for (int64_t v = 0; v < n; ++v) {
      pos[v] = cursor[deg[v]]++;
      order[pos[v]] = static_cast<graph::NodeId>(v);
    }
  }

  std::vector<int32_t> coreness(n, 0);
  std::vector<int32_t> cur(deg);
  for (int64_t i = 0; i < n; ++i) {
    const graph::NodeId v = order[i];
    coreness[v] = cur[v];
    for (const graph::NodeId u : g.neighbors(v)) {
      if (cur[u] <= cur[v]) continue;  // u already peeled or same level
      // Swap u to the front of its bucket, then shrink its degree.
      const int32_t du = cur[u];
      const int64_t front = bucket_start[du];
      const graph::NodeId w = order[front];
      std::swap(order[pos[u]], order[front]);
      std::swap(pos[u], pos[w]);
      ++bucket_start[du];
      --cur[u];
    }
  }
  return coreness;
}

std::vector<graph::NodeId> KCoreVertices(const std::vector<int32_t>& coreness,
                                         int32_t k) {
  std::vector<graph::NodeId> out;
  for (size_t v = 0; v < coreness.size(); ++v) {
    if (coreness[v] >= k) out.push_back(static_cast<graph::NodeId>(v));
  }
  return out;
}

int32_t Degeneracy(const std::vector<int32_t>& coreness) {
  int32_t best = 0;
  for (const int32_t c : coreness) best = std::max(best, c);
  return best;
}

}  // namespace ampc::seq
