#include "graph/stats.h"

#include <algorithm>
#include <deque>
#include <map>
#include <sstream>
#include <unordered_map>

#include "common/logging.h"

namespace ampc::graph {
namespace {

// BFS from `source`, returning (farthest node, eccentricity) and visiting
// only nodes with labels[v] == labels[source].
std::pair<NodeId, int64_t> BfsFarthest(const Graph& g, NodeId source,
                                       std::vector<int64_t>& dist) {
  std::fill(dist.begin(), dist.end(), -1);
  std::deque<NodeId> queue;
  dist[source] = 0;
  queue.push_back(source);
  NodeId farthest = source;
  while (!queue.empty()) {
    NodeId v = queue.front();
    queue.pop_front();
    if (dist[v] > dist[farthest]) farthest = v;
    for (NodeId u : g.neighbors(v)) {
      if (dist[u] < 0) {
        dist[u] = dist[v] + 1;
        queue.push_back(u);
      }
    }
  }
  return {farthest, dist[farthest]};
}

}  // namespace

std::vector<NodeId> SequentialComponents(const Graph& g) {
  const int64_t n = g.num_nodes();
  std::vector<NodeId> label(n, kInvalidNode);
  std::deque<NodeId> queue;
  for (int64_t s = 0; s < n; ++s) {
    if (label[s] != kInvalidNode) continue;
    label[s] = static_cast<NodeId>(s);
    queue.push_back(static_cast<NodeId>(s));
    while (!queue.empty()) {
      NodeId v = queue.front();
      queue.pop_front();
      for (NodeId u : g.neighbors(v)) {
        if (label[u] == kInvalidNode) {
          label[u] = static_cast<NodeId>(s);
          queue.push_back(u);
        }
      }
    }
  }
  return label;
}

std::vector<int64_t> ComponentSizes(const std::vector<NodeId>& labels) {
  std::unordered_map<NodeId, int64_t> sizes;
  for (NodeId l : labels) ++sizes[l];
  std::vector<int64_t> out;
  out.reserve(sizes.size());
  // ampc-lint: allow(det-unordered-iter): the sort below erases the
  // collection order before anything is returned.
  for (const auto& [label, size] : sizes) out.push_back(size);
  std::sort(out.rbegin(), out.rend());
  return out;
}

bool SamePartition(const std::vector<NodeId>& a,
                   const std::vector<NodeId>& b) {
  if (a.size() != b.size()) return false;
  std::unordered_map<NodeId, NodeId> a_to_b, b_to_a;
  for (size_t i = 0; i < a.size(); ++i) {
    auto [it_ab, fresh_ab] = a_to_b.emplace(a[i], b[i]);
    if (!fresh_ab && it_ab->second != b[i]) return false;
    auto [it_ba, fresh_ba] = b_to_a.emplace(b[i], a[i]);
    if (!fresh_ba && it_ba->second != a[i]) return false;
  }
  return true;
}

GraphStats ComputeStats(const Graph& g) {
  GraphStats stats;
  stats.num_nodes = g.num_nodes();
  stats.num_arcs = g.num_arcs();
  stats.max_degree = g.max_degree();
  stats.avg_degree =
      stats.num_nodes == 0
          ? 0
          : static_cast<double>(stats.num_arcs) / stats.num_nodes;

  std::vector<NodeId> labels = SequentialComponents(g);
  std::vector<int64_t> sizes = ComponentSizes(labels);
  stats.num_components = static_cast<int64_t>(sizes.size());
  stats.largest_component = sizes.empty() ? 0 : sizes.front();

  if (stats.num_nodes > 0) {
    // Double sweep inside the component of the max-degree node (a cheap,
    // standard diameter lower bound).
    NodeId start = 0;
    for (int64_t v = 0; v < g.num_nodes(); ++v) {
      if (g.degree(static_cast<NodeId>(v)) > g.degree(start)) {
        start = static_cast<NodeId>(v);
      }
    }
    std::vector<int64_t> dist(g.num_nodes());
    auto [far1, ecc1] = BfsFarthest(g, start, dist);
    auto [far2, ecc2] = BfsFarthest(g, far1, dist);
    (void)far2;
    stats.diameter_lower_bound = std::max(ecc1, ecc2);
  }
  return stats;
}

std::string GraphStats::ToString() const {
  std::ostringstream os;
  os << "n=" << num_nodes << " m=" << num_arcs << " maxdeg=" << max_degree
     << " avgdeg=" << avg_degree << " cc=" << num_components
     << " largest=" << largest_component
     << " diam>=" << diameter_lower_bound;
  return os.str();
}

}  // namespace ampc::graph
