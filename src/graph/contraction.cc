#include "graph/contraction.h"

#include <unordered_map>

#include "common/logging.h"

namespace ampc::graph {

ContractedGraph ContractEdgeList(const WeightedEdgeList& list,
                                 const std::vector<NodeId>& cluster_of) {
  AMPC_CHECK_EQ(static_cast<int64_t>(cluster_of.size()), list.num_nodes);
  ContractedGraph out;

  // Compact cluster ids that appear on at least one surviving edge.
  std::unordered_map<NodeId, NodeId> compact;
  auto compact_id = [&](NodeId root) {
    auto [it, fresh] = compact.emplace(
        root, static_cast<NodeId>(compact.size()));
    if (fresh) out.representative.push_back(root);
    return it->second;
  };

  for (const WeightedEdge& e : list.edges) {
    const NodeId ru = cluster_of[e.u];
    const NodeId rv = cluster_of[e.v];
    if (ru == rv) continue;
    out.list.edges.push_back(
        WeightedEdge{compact_id(ru), compact_id(rv), e.w, e.id});
  }
  out.list.num_nodes = static_cast<int64_t>(compact.size());

  out.compact_of_vertex.assign(list.num_nodes, kInvalidNode);
  for (int64_t v = 0; v < list.num_nodes; ++v) {
    auto it = compact.find(cluster_of[v]);
    if (it != compact.end()) out.compact_of_vertex[v] = it->second;
  }
  return out;
}

}  // namespace ampc::graph
