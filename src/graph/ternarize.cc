#include "graph/ternarize.h"

#include <algorithm>
#include <limits>

#include "common/logging.h"

namespace ampc::graph {

Ternarized TernarizeGraph(const WeightedEdgeList& list) {
  const int64_t n = list.num_nodes;
  std::vector<int64_t> deg(n, 0);
  for (const WeightedEdge& e : list.edges) {
    if (e.u == e.v) continue;  // Self-loops are never in an MSF; drop them.
    ++deg[e.u];
    ++deg[e.v];
  }

  // Block layout: vertex v occupies [block[v], block[v] + size_v) where
  // size_v = deg(v) if deg(v) > 3 else 1.
  std::vector<int64_t> block(n + 1, 0);
  for (int64_t v = 0; v < n; ++v) {
    block[v + 1] = block[v] + (deg[v] > 3 ? deg[v] : 1);
  }
  const int64_t new_n = block[n];

  Ternarized out;
  out.list.num_nodes = new_n;
  out.orig_of_node.resize(new_n);
  for (int64_t v = 0; v < n; ++v) {
    for (int64_t i = block[v]; i < block[v + 1]; ++i) {
      out.orig_of_node[i] = static_cast<NodeId>(v);
    }
  }

  Weight min_w = std::numeric_limits<Weight>::infinity();
  for (const WeightedEdge& e : list.edges) min_w = std::min(min_w, e.w);
  out.dummy_weight = list.edges.empty() ? -1.0 : min_w - 1.0;
  out.first_dummy_id = static_cast<EdgeId>(list.edges.size());

  // Place each original edge on its endpoints' next free cycle slot.
  std::vector<int64_t> cursor(n, 0);
  out.list.edges.reserve(list.edges.size() + new_n);
  for (const WeightedEdge& e : list.edges) {
    if (e.u == e.v) continue;
    const int64_t su = deg[e.u] > 3 ? cursor[e.u]++ : 0;
    const int64_t sv = deg[e.v] > 3 ? cursor[e.v]++ : 0;
    out.list.edges.push_back(WeightedEdge{
        static_cast<NodeId>(block[e.u] + su),
        static_cast<NodeId>(block[e.v] + sv), e.w, e.id});
  }

  // Dummy cycle edges for high-degree vertices.
  EdgeId next_id = out.first_dummy_id;
  for (int64_t v = 0; v < n; ++v) {
    if (deg[v] <= 3) continue;
    for (int64_t i = 0; i < deg[v]; ++i) {
      const int64_t a = block[v] + i;
      const int64_t b = block[v] + (i + 1) % deg[v];
      out.list.edges.push_back(WeightedEdge{static_cast<NodeId>(a),
                                            static_cast<NodeId>(b),
                                            out.dummy_weight, next_id++});
    }
  }
  return out;
}

std::vector<EdgeId> StripDummyEdges(const Ternarized& t,
                                    const std::vector<EdgeId>& msf_edges) {
  std::vector<EdgeId> out;
  out.reserve(msf_edges.size());
  for (EdgeId id : msf_edges) {
    if (id < t.first_dummy_id) out.push_back(id);
  }
  return out;
}

}  // namespace ampc::graph
