// Graph contraction: relabel edge endpoints through a vertex -> cluster
// mapping, drop intra-cluster edges, and compact cluster ids. Used by the
// AMPC MSF contraction step (paper Algorithm 1, line 14) and the MPC
// Borůvka baseline (Section 5.5).
#pragma once

#include <vector>

#include "graph/graph.h"

namespace ampc::graph {

/// Result of contracting a weighted edge list.
struct ContractedGraph {
  /// Surviving inter-cluster edges with compacted endpoints; edge ids and
  /// weights are preserved from the input.
  WeightedEdgeList list;
  /// Maps each original vertex to its compacted cluster id, or
  /// kInvalidNode for vertices whose cluster became isolated (no
  /// surviving incident edge) — such clusters are removed, matching
  /// "with isolated vertices removed" in Algorithm 1.
  std::vector<NodeId> compact_of_vertex;
  /// For each compacted cluster, a representative original vertex.
  std::vector<NodeId> representative;
};

/// Contracts `list` according to `cluster_of` (vertex -> cluster root; the
/// mapping need not be compact). Parallel edges are kept (the MSF
/// algorithms tolerate them); self-loops are removed.
ContractedGraph ContractEdgeList(const WeightedEdgeList& list,
                                 const std::vector<NodeId>& cluster_of);

}  // namespace ampc::graph
