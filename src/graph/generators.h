// Synthetic graph generators.
//
// The paper evaluates on five real-world graphs (com-Orkut, Twitter,
// Friendster, ClueWeb, Hyperlink2012) plus synthetic 2xk double cycles.
// The real datasets are multi-terabyte web/social crawls we cannot ship,
// so the benchmark harness substitutes structural stand-ins generated
// here: RMAT graphs matched to each dataset's size ratio and degree skew
// (social graphs: lightly skewed; web graphs: heavily skewed with
// multi-million-degree hubs), and exact 2xk cycles for Section 5.6.
// DESIGN.md and EXPERIMENTS.md record the substitution.
#pragma once

#include <cstdint>

#include "graph/graph.h"

namespace ampc::graph {

/// G(n, m) Erdős–Rényi multigraph: m edges sampled uniformly (dedup at
/// build time).
EdgeList GenerateErdosRenyi(int64_t num_nodes, int64_t num_edges,
                            uint64_t seed);

/// Parameters of the recursive-matrix (R-MAT) generator.
struct RmatOptions {
  double a = 0.57;
  double b = 0.19;
  double c = 0.19;  // d = 1 - a - b - c
  /// Permute node ids so degree correlates with nothing (avoids locality
  /// artifacts in partitioned runtimes).
  bool scramble_ids = true;
};

/// R-MAT graph over 2^log2_nodes vertices with num_edges samples. With the
/// default parameters this yields the heavy-tailed degree distributions
/// typical of social/web graphs.
EdgeList GenerateRmat(int log2_nodes, int64_t num_edges, uint64_t seed,
                      const RmatOptions& options = {});

/// A single cycle 0-1-2-...-(n-1)-0.
EdgeList GenerateCycle(int64_t num_nodes);

/// Two disjoint cycles of k vertices each — the paper's "2 x k" family
/// used by the 1-vs-2-Cycle experiments (Section 5.6).
EdgeList GenerateDoubleCycle(int64_t k);

/// Simple path 0-1-...-(n-1).
EdgeList GeneratePath(int64_t num_nodes);

/// rows x cols grid with 4-neighbor connectivity.
EdgeList GenerateGrid(int64_t rows, int64_t cols);

/// Uniform random recursive tree: node i attaches to a uniform node < i.
EdgeList GenerateRandomTree(int64_t num_nodes, uint64_t seed);

/// Random forest: `num_trees` disjoint random trees of roughly equal size.
EdgeList GenerateRandomForest(int64_t num_nodes, int64_t num_trees,
                              uint64_t seed);

/// Star with center 0 and n-1 leaves.
EdgeList GenerateStar(int64_t num_nodes);

/// Complete graph K_n (use only for tiny n).
EdgeList GenerateComplete(int64_t num_nodes);

/// Random tree with every vertex of degree <= 3 (binary-ish), used to
/// exercise the ternary-treap analysis paths.
EdgeList GenerateRandomTernaryTree(int64_t num_nodes, uint64_t seed);

}  // namespace ampc::graph
