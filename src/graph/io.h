// Edge-list file IO. Text format: one `u v [w]` pair per line, `#`
// comments allowed. Binary format: a small header plus raw arrays —
// the format used to cache generated benchmark inputs.
#pragma once

#include <string>

#include "common/status.h"
#include "graph/graph.h"

namespace ampc::graph {

/// Reads a text edge list. Node ids must fit in NodeId; num_nodes is
/// max id + 1 unless a `# nodes <n>` header line is present.
StatusOr<EdgeList> ReadEdgeListText(const std::string& path);

/// Reads a weighted text edge list (`u v w` per line).
StatusOr<WeightedEdgeList> ReadWeightedEdgeListText(const std::string& path);

/// Writes a text edge list with a `# nodes <n>` header.
Status WriteEdgeListText(const EdgeList& list, const std::string& path);

/// Writes a weighted text edge list.
Status WriteWeightedEdgeListText(const WeightedEdgeList& list,
                                 const std::string& path);

/// Binary round-trip (little-endian, fixed-width header + packed edges).
Status WriteEdgeListBinary(const EdgeList& list, const std::string& path);
StatusOr<EdgeList> ReadEdgeListBinary(const std::string& path);

}  // namespace ampc::graph
