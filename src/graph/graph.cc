#include "graph/graph.h"

#include <algorithm>
#include <numeric>

#include "common/logging.h"
#include "common/parallel.h"
#include "common/random.h"
#include "common/thread_pool.h"

namespace ampc::graph {
namespace {

// Computes per-node arc counts for a symmetrized edge list.
std::vector<uint64_t> CountDegrees(int64_t n, std::span<const NodeId> us,
                                   std::span<const NodeId> vs,
                                   bool remove_self_loops) {
  std::vector<uint64_t> deg(n, 0);
  for (size_t i = 0; i < us.size(); ++i) {
    if (remove_self_loops && us[i] == vs[i]) continue;
    ++deg[us[i]];
    ++deg[vs[i]];
  }
  return deg;
}

std::vector<uint64_t> ExclusiveScan(const std::vector<uint64_t>& deg) {
  std::vector<uint64_t> offsets(deg.size() + 1, 0);
  for (size_t i = 0; i < deg.size(); ++i) offsets[i + 1] = offsets[i] + deg[i];
  return offsets;
}

}  // namespace

int64_t Graph::max_degree() const {
  int64_t best = 0;
  for (int64_t v = 0; v < num_nodes(); ++v) {
    best = std::max(best, degree(static_cast<NodeId>(v)));
  }
  return best;
}

int64_t WeightedGraph::max_degree() const {
  int64_t best = 0;
  for (int64_t v = 0; v < num_nodes(); ++v) {
    best = std::max(best, degree(static_cast<NodeId>(v)));
  }
  return best;
}

Graph BuildGraph(const EdgeList& list, const BuildOptions& options) {
  const int64_t n = list.num_nodes;
  for (const Edge& e : list.edges) {
    AMPC_CHECK_LT(e.u, n);
    AMPC_CHECK_LT(e.v, n);
  }
  std::vector<NodeId> us(list.edges.size()), vs(list.edges.size());
  for (size_t i = 0; i < list.edges.size(); ++i) {
    us[i] = list.edges[i].u;
    vs[i] = list.edges[i].v;
  }

  std::vector<uint64_t> deg =
      CountDegrees(n, us, vs, options.remove_self_loops);
  std::vector<uint64_t> offsets = ExclusiveScan(deg);

  // One global sort keyed by (owner, neighbor) replaces per-vertex sorts:
  // a hub vertex's adjacency no longer sorts on a single thread, so
  // skewed degree distributions parallelize as well as uniform ones.
  struct DirArc {
    NodeId from;
    NodeId to;
  };
  std::vector<DirArc> arcs;
  arcs.reserve(offsets.back());
  for (size_t i = 0; i < us.size(); ++i) {
    if (options.remove_self_loops && us[i] == vs[i]) continue;
    arcs.push_back(DirArc{us[i], vs[i]});
    arcs.push_back(DirArc{vs[i], us[i]});
  }
  ParallelSort(ThreadPool::Global(), arcs,
               [](const DirArc& a, const DirArc& b) {
                 if (a.from != b.from) return a.from < b.from;
                 return a.to < b.to;
               });
  std::vector<NodeId> adjacency(offsets.back());
  ParallelForChunked(ThreadPool::Global(), 0,
                     static_cast<int64_t>(arcs.size()), 4096,
                     [&](int64_t lo, int64_t hi) {
                       for (int64_t i = lo; i < hi; ++i) {
                         adjacency[i] = arcs[i].to;
                       }
                     });

  Graph g;
  if (!options.dedup) {
    g.offsets_ = std::move(offsets);
    g.adjacency_ = std::move(adjacency);
    return g;
  }

  // Dedup within each sorted adjacency, then compact.
  std::vector<uint64_t> new_deg(n, 0);
  for (int64_t v = 0; v < n; ++v) {
    auto begin = adjacency.begin() + offsets[v];
    auto end = adjacency.begin() + offsets[v + 1];
    new_deg[v] = static_cast<uint64_t>(std::unique(begin, end) - begin);
  }
  std::vector<uint64_t> new_offsets = ExclusiveScan(new_deg);
  std::vector<NodeId> compact(new_offsets.back());
  for (int64_t v = 0; v < n; ++v) {
    std::copy_n(adjacency.begin() + offsets[v], new_deg[v],
                compact.begin() + new_offsets[v]);
  }
  g.offsets_ = std::move(new_offsets);
  g.adjacency_ = std::move(compact);
  return g;
}

WeightedGraph BuildWeightedGraph(const WeightedEdgeList& list,
                                 const BuildOptions& options) {
  const int64_t n = list.num_nodes;
  for (const WeightedEdge& e : list.edges) {
    AMPC_CHECK_LT(e.u, n);
    AMPC_CHECK_LT(e.v, n);
  }

  std::vector<uint64_t> deg(n, 0);
  for (const WeightedEdge& e : list.edges) {
    if (options.remove_self_loops && e.u == e.v) continue;
    ++deg[e.u];
    ++deg[e.v];
  }
  std::vector<uint64_t> offsets = ExclusiveScan(deg);

  // Global (owner, neighbor, weight, id) sort instead of per-vertex
  // sorts, for the same skew-robustness as BuildGraph above.
  struct Arc {
    NodeId from;
    NodeId to;
    Weight w;
    EdgeId id;
  };
  std::vector<Arc> arcs;
  arcs.reserve(offsets.back());
  for (const WeightedEdge& e : list.edges) {
    if (options.remove_self_loops && e.u == e.v) continue;
    arcs.push_back(Arc{e.u, e.v, e.w, e.id});
    arcs.push_back(Arc{e.v, e.u, e.w, e.id});
  }
  ParallelSort(ThreadPool::Global(), arcs,
               [](const Arc& a, const Arc& b) {
                 if (a.from != b.from) return a.from < b.from;
                 if (a.to != b.to) return a.to < b.to;
                 if (a.w != b.w) return a.w < b.w;
                 return a.id < b.id;
               });

  std::vector<uint64_t> new_deg(n, 0);
  if (options.dedup) {
    for (int64_t v = 0; v < n; ++v) {
      uint64_t count = 0;
      NodeId prev = kInvalidNode;
      for (uint64_t i = offsets[v]; i < offsets[v + 1]; ++i) {
        if (arcs[i].to != prev) {
          ++count;
          prev = arcs[i].to;
        }
      }
      new_deg[v] = count;
    }
  } else {
    for (int64_t v = 0; v < n; ++v) new_deg[v] = offsets[v + 1] - offsets[v];
  }

  std::vector<uint64_t> new_offsets = ExclusiveScan(new_deg);
  WeightedGraph g;
  g.offsets_ = new_offsets;
  g.adjacency_.resize(new_offsets.back());
  g.weights_.resize(new_offsets.back());
  g.edge_ids_.resize(new_offsets.back());
  for (int64_t v = 0; v < n; ++v) {
    uint64_t out = new_offsets[v];
    NodeId prev = kInvalidNode;
    for (uint64_t i = offsets[v]; i < offsets[v + 1]; ++i) {
      if (options.dedup && arcs[i].to == prev) continue;
      prev = arcs[i].to;
      g.adjacency_[out] = arcs[i].to;
      g.weights_[out] = arcs[i].w;
      g.edge_ids_[out] = arcs[i].id;
      ++out;
    }
    AMPC_CHECK_EQ(out, new_offsets[v + 1]);
  }
  return g;
}

void WeightedGraph::SortAdjacenciesByWeight() {
  const int64_t n = num_nodes();
  // One global sort keyed by (owner, weight, id) replaces per-vertex
  // sorts, the same skew-robustness pattern as BuildWeightedGraph: a hub
  // vertex's adjacency no longer sorts on a single thread. Offsets are
  // untouched, so scattering the sorted arcs back by position restores
  // each vertex's slice in weight order.
  struct Arc {
    NodeId from;
    NodeId to;
    Weight w;
    EdgeId id;
  };
  std::vector<Arc> arcs(adjacency_.size());
  ParallelForChunked(
      ThreadPool::Global(), 0, n, 512, [&](int64_t lo, int64_t hi) {
        for (int64_t v = lo; v < hi; ++v) {
          for (uint64_t i = offsets_[v]; i < offsets_[v + 1]; ++i) {
            arcs[i] = Arc{static_cast<NodeId>(v), adjacency_[i],
                          weights_[i], edge_ids_[i]};
          }
        }
      });
  ParallelSort(ThreadPool::Global(), arcs,
               [](const Arc& a, const Arc& b) {
                 if (a.from != b.from) return a.from < b.from;
                 if (a.w != b.w) return a.w < b.w;
                 return a.id < b.id;
               });
  ParallelForChunked(
      ThreadPool::Global(), 0, static_cast<int64_t>(arcs.size()), 4096,
      [&](int64_t lo, int64_t hi) {
        for (int64_t i = lo; i < hi; ++i) {
          adjacency_[i] = arcs[i].to;
          weights_[i] = arcs[i].w;
          edge_ids_[i] = arcs[i].id;
        }
      });
}

Weight WeightedGraph::MinWeight() const {
  Weight best = 0;
  bool any = false;
  for (size_t i = 0; i < weights_.size(); ++i) {
    if (!any || weights_[i] < best) {
      best = weights_[i];
      any = true;
    }
  }
  return best;
}

WeightedEdgeList MakeDegreeWeighted(const EdgeList& list, const Graph& g) {
  WeightedEdgeList out;
  out.num_nodes = list.num_nodes;
  out.edges.reserve(list.edges.size());
  for (size_t i = 0; i < list.edges.size(); ++i) {
    const Edge& e = list.edges[i];
    out.edges.push_back(WeightedEdge{
        e.u, e.v, static_cast<Weight>(g.degree(e.u) + g.degree(e.v)),
        static_cast<EdgeId>(i)});
  }
  return out;
}

WeightedEdgeList MakeRandomWeighted(const EdgeList& list, uint64_t seed) {
  WeightedEdgeList out;
  out.num_nodes = list.num_nodes;
  out.edges.reserve(list.edges.size());
  for (size_t i = 0; i < list.edges.size(); ++i) {
    const Edge& e = list.edges[i];
    out.edges.push_back(WeightedEdge{
        e.u, e.v, ToUnitDouble(HashEdge(e.u, e.v, seed)),
        static_cast<EdgeId>(i)});
  }
  return out;
}

WeightedEdgeList MakeUnitWeighted(const EdgeList& list) {
  WeightedEdgeList out;
  out.num_nodes = list.num_nodes;
  out.edges.reserve(list.edges.size());
  for (size_t i = 0; i < list.edges.size(); ++i) {
    const Edge& e = list.edges[i];
    out.edges.push_back(WeightedEdge{e.u, e.v, 1.0, static_cast<EdgeId>(i)});
  }
  return out;
}

EdgeList StripWeights(const WeightedEdgeList& list) {
  EdgeList out;
  out.num_nodes = list.num_nodes;
  out.edges.reserve(list.edges.size());
  for (const WeightedEdge& e : list.edges) out.edges.push_back(Edge{e.u, e.v});
  return out;
}

}  // namespace ampc::graph
