// Ternarization (paper Algorithm 2, line 2): replaces every vertex of
// degree > 3 with a cycle of length deg(v), attaching each incident edge
// to its own cycle vertex. Dummy cycle edges get weight strictly below the
// lightest real edge, so they all join the MSF of the ternarized graph and
// can be stripped from the output afterwards.
#pragma once

#include <vector>

#include "graph/graph.h"

namespace ampc::graph {

/// Result of ternarizing a weighted graph.
struct Ternarized {
  /// Edges of the ternarized graph. Ids < first_dummy_id are original edge
  /// ids (unchanged); ids >= first_dummy_id are dummy cycle edges.
  WeightedEdgeList list;
  /// Maps each ternarized vertex to the original vertex it represents.
  std::vector<NodeId> orig_of_node;
  /// First edge id used for dummy cycle edges.
  EdgeId first_dummy_id = 0;
  /// The weight assigned to dummy edges (below every real weight).
  Weight dummy_weight = 0;
};

/// Ternarizes `list`. Self-loops are dropped (they can never join an MSF);
/// parallel edges are kept, each on its own cycle slot. The resulting graph
/// has maximum degree <= 3 and O(num_edges) vertices.
Ternarized TernarizeGraph(const WeightedEdgeList& list);

/// Filters a ternarized MSF edge-id set back to original edge ids
/// (drops dummy edges). Ids must come from TernarizeGraph's `list`.
std::vector<EdgeId> StripDummyEdges(const Ternarized& t,
                                    const std::vector<EdgeId>& msf_edges);

}  // namespace ampc::graph
