// Immutable CSR graph representations (unweighted and weighted) and
// edge-list builders. All distributed algorithms in this library consume
// these types; the KV substrate serves adjacency slices out of them.
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"

namespace ampc::graph {

using NodeId = uint32_t;
using EdgeId = uint32_t;
using Weight = double;

inline constexpr NodeId kInvalidNode = std::numeric_limits<NodeId>::max();
inline constexpr EdgeId kInvalidEdge = std::numeric_limits<EdgeId>::max();

/// An undirected edge (endpoint order is not meaningful).
struct Edge {
  NodeId u = 0;
  NodeId v = 0;

  bool operator==(const Edge&) const = default;
};

/// An undirected weighted edge with a stable identifier. The id is the
/// index of the edge in the defining edge list; MSF outputs are reported
/// as sets of edge ids so results compare exactly across algorithms.
struct WeightedEdge {
  NodeId u = 0;
  NodeId v = 0;
  Weight w = 0;
  EdgeId id = 0;

  bool operator==(const WeightedEdge&) const = default;
};

/// A bag of undirected edges over nodes [0, num_nodes).
struct EdgeList {
  int64_t num_nodes = 0;
  std::vector<Edge> edges;
};

/// A bag of undirected weighted edges over nodes [0, num_nodes).
struct WeightedEdgeList {
  int64_t num_nodes = 0;
  std::vector<WeightedEdge> edges;
};

/// Options controlling CSR construction.
struct BuildOptions {
  /// Drop (u, u) edges.
  bool remove_self_loops = true;
  /// Keep a single copy of parallel edges per adjacency (first wins for
  /// weighted graphs; adjacency is sorted by neighbor id first).
  bool dedup = true;
};

/// A symmetric (undirected) unweighted graph in CSR form. `num_arcs` counts
/// directed arcs, i.e. twice the number of undirected edges — matching how
/// the paper reports m for its symmetrized inputs.
class Graph {
 public:
  Graph() = default;

  int64_t num_nodes() const { return static_cast<int64_t>(offsets_.size()) - 1; }
  int64_t num_arcs() const { return static_cast<int64_t>(adjacency_.size()); }
  int64_t num_undirected_edges() const { return num_arcs() / 2; }

  int64_t degree(NodeId v) const {
    return static_cast<int64_t>(offsets_[v + 1] - offsets_[v]);
  }

  std::span<const NodeId> neighbors(NodeId v) const {
    return {adjacency_.data() + offsets_[v],
            adjacency_.data() + offsets_[v + 1]};
  }

  int64_t max_degree() const;

  /// Approximate bytes of an adjacency record when stored in the KV store:
  /// key + neighbor ids. Used for communication accounting.
  int64_t AdjacencyBytes(NodeId v) const {
    return static_cast<int64_t>(sizeof(NodeId)) * (1 + degree(v));
  }

 private:
  friend Graph BuildGraph(const EdgeList& list, const BuildOptions& options);

  std::vector<uint64_t> offsets_;  // size num_nodes + 1
  std::vector<NodeId> adjacency_;
};

/// A symmetric weighted graph in CSR form; every arc carries the weight and
/// the undirected edge id it came from.
class WeightedGraph {
 public:
  WeightedGraph() = default;

  int64_t num_nodes() const { return static_cast<int64_t>(offsets_.size()) - 1; }
  int64_t num_arcs() const { return static_cast<int64_t>(adjacency_.size()); }
  int64_t num_undirected_edges() const { return num_arcs() / 2; }

  int64_t degree(NodeId v) const {
    return static_cast<int64_t>(offsets_[v + 1] - offsets_[v]);
  }

  std::span<const NodeId> neighbors(NodeId v) const {
    return {adjacency_.data() + offsets_[v],
            adjacency_.data() + offsets_[v + 1]};
  }
  std::span<const Weight> weights(NodeId v) const {
    return {weights_.data() + offsets_[v], weights_.data() + offsets_[v + 1]};
  }
  std::span<const EdgeId> edge_ids(NodeId v) const {
    return {edge_ids_.data() + offsets_[v],
            edge_ids_.data() + offsets_[v + 1]};
  }

  int64_t max_degree() const;

  int64_t AdjacencyBytes(NodeId v) const {
    return static_cast<int64_t>(
        sizeof(NodeId) +
        degree(v) * (sizeof(NodeId) + sizeof(Weight) + sizeof(EdgeId)));
  }

  /// Sorts every adjacency in place by (weight, edge id) ascending — the
  /// layout the AMPC MSF algorithm stores in the KV store (paper §5.5:
  /// "sorts the edges incident to each vertex by their weights").
  void SortAdjacenciesByWeight();

  /// Returns the minimum edge weight; 0 for an edgeless graph.
  Weight MinWeight() const;

 private:
  friend WeightedGraph BuildWeightedGraph(const WeightedEdgeList& list,
                                          const BuildOptions& options);

  std::vector<uint64_t> offsets_;
  std::vector<NodeId> adjacency_;
  std::vector<Weight> weights_;
  std::vector<EdgeId> edge_ids_;
};

/// Builds a symmetric CSR graph from an undirected edge list. Both arcs of
/// every edge are materialized; adjacencies are sorted by neighbor id.
Graph BuildGraph(const EdgeList& list, const BuildOptions& options = {});

/// Weighted variant; arcs carry (weight, edge id) of the defining edge.
WeightedGraph BuildWeightedGraph(const WeightedEdgeList& list,
                                 const BuildOptions& options = {});

/// Attaches weights to an edge list: w(u, v) = deg(u) + deg(v), the scheme
/// the paper uses for its MSF inputs (§5.2). Degrees are taken in `g`,
/// which must be the graph built from `list`.
WeightedEdgeList MakeDegreeWeighted(const EdgeList& list, const Graph& g);

/// Attaches i.i.d. uniform weights in [0, 1) derived from `seed`.
WeightedEdgeList MakeRandomWeighted(const EdgeList& list, uint64_t seed);

/// Attaches unit weights (w = 1) — turns MSF into spanning forest.
WeightedEdgeList MakeUnitWeighted(const EdgeList& list);

/// Strips weights.
EdgeList StripWeights(const WeightedEdgeList& list);

}  // namespace ampc::graph
