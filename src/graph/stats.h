// Whole-graph statistics: the census columns of the paper's Table 2
// (n, m, diameter, number of components, largest component).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.h"

namespace ampc::graph {

/// Dataset census, one row of Table 2.
struct GraphStats {
  int64_t num_nodes = 0;
  int64_t num_arcs = 0;  // directed arc count, as the paper reports m
  int64_t max_degree = 0;
  double avg_degree = 0;
  int64_t num_components = 0;
  int64_t largest_component = 0;
  /// Lower bound on diameter from a double BFS sweep inside the largest
  /// component (the paper also reports lower bounds for its big graphs).
  int64_t diameter_lower_bound = 0;

  std::string ToString() const;
};

/// Computes all stats. BFS-based; linear work.
GraphStats ComputeStats(const Graph& g);

/// Labels connected components sequentially (BFS); label = smallest node
/// id in the component. Ground-truth oracle for connectivity tests.
std::vector<NodeId> SequentialComponents(const Graph& g);

/// Returns sizes of all components, descending.
std::vector<int64_t> ComponentSizes(const std::vector<NodeId>& labels);

/// True if labels `a` and `b` induce the same partition of the nodes.
bool SamePartition(const std::vector<NodeId>& a, const std::vector<NodeId>& b);

}  // namespace ampc::graph
