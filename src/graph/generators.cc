#include "graph/generators.h"

#include <algorithm>
#include <numeric>

#include "common/logging.h"
#include "common/random.h"

namespace ampc::graph {

EdgeList GenerateErdosRenyi(int64_t num_nodes, int64_t num_edges,
                            uint64_t seed) {
  AMPC_CHECK_GE(num_nodes, 1);
  Rng rng(seed);
  EdgeList list;
  list.num_nodes = num_nodes;
  list.edges.reserve(num_edges);
  for (int64_t i = 0; i < num_edges; ++i) {
    NodeId u = static_cast<NodeId>(rng.NextBelow(num_nodes));
    NodeId v = static_cast<NodeId>(rng.NextBelow(num_nodes));
    list.edges.push_back(Edge{u, v});
  }
  return list;
}

EdgeList GenerateRmat(int log2_nodes, int64_t num_edges, uint64_t seed,
                      const RmatOptions& options) {
  AMPC_CHECK_GE(log2_nodes, 1);
  AMPC_CHECK_LE(log2_nodes, 31);
  const int64_t n = int64_t{1} << log2_nodes;
  Rng rng(seed);
  EdgeList list;
  list.num_nodes = n;
  list.edges.reserve(num_edges);

  const double ab = options.a + options.b;
  const double abc = ab + options.c;
  for (int64_t i = 0; i < num_edges; ++i) {
    uint64_t u = 0, v = 0;
    for (int bit = 0; bit < log2_nodes; ++bit) {
      const double r = rng.NextDouble();
      u <<= 1;
      v <<= 1;
      if (r < options.a) {
        // top-left quadrant: no bits set
      } else if (r < ab) {
        v |= 1;
      } else if (r < abc) {
        u |= 1;
      } else {
        u |= 1;
        v |= 1;
      }
    }
    list.edges.push_back(
        Edge{static_cast<NodeId>(u), static_cast<NodeId>(v)});
  }

  if (options.scramble_ids) {
    // Multiply-by-odd plus offset modulo 2^k is a bijection on the id
    // space, so this permutes ids without extra memory.
    const uint64_t mask = static_cast<uint64_t>(n - 1);
    const uint64_t odd = (Hash64(1, seed) | 1) & mask;
    const uint64_t add = Hash64(2, seed) & mask;
    auto scramble = [&](NodeId x) {
      return static_cast<NodeId>((x * odd + add) & mask);
    };
    for (Edge& e : list.edges) {
      e.u = scramble(e.u);
      e.v = scramble(e.v);
    }
  }
  return list;
}

EdgeList GenerateCycle(int64_t num_nodes) {
  AMPC_CHECK_GE(num_nodes, 3);
  EdgeList list;
  list.num_nodes = num_nodes;
  list.edges.reserve(num_nodes);
  for (int64_t i = 0; i < num_nodes; ++i) {
    list.edges.push_back(Edge{static_cast<NodeId>(i),
                              static_cast<NodeId>((i + 1) % num_nodes)});
  }
  return list;
}

EdgeList GenerateDoubleCycle(int64_t k) {
  AMPC_CHECK_GE(k, 3);
  EdgeList list;
  list.num_nodes = 2 * k;
  list.edges.reserve(2 * k);
  for (int64_t i = 0; i < k; ++i) {
    list.edges.push_back(
        Edge{static_cast<NodeId>(i), static_cast<NodeId>((i + 1) % k)});
  }
  for (int64_t i = 0; i < k; ++i) {
    list.edges.push_back(Edge{static_cast<NodeId>(k + i),
                              static_cast<NodeId>(k + (i + 1) % k)});
  }
  return list;
}

EdgeList GeneratePath(int64_t num_nodes) {
  AMPC_CHECK_GE(num_nodes, 1);
  EdgeList list;
  list.num_nodes = num_nodes;
  for (int64_t i = 0; i + 1 < num_nodes; ++i) {
    list.edges.push_back(
        Edge{static_cast<NodeId>(i), static_cast<NodeId>(i + 1)});
  }
  return list;
}

EdgeList GenerateGrid(int64_t rows, int64_t cols) {
  AMPC_CHECK_GE(rows, 1);
  AMPC_CHECK_GE(cols, 1);
  EdgeList list;
  list.num_nodes = rows * cols;
  auto id = [cols](int64_t r, int64_t c) {
    return static_cast<NodeId>(r * cols + c);
  };
  for (int64_t r = 0; r < rows; ++r) {
    for (int64_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) list.edges.push_back(Edge{id(r, c), id(r, c + 1)});
      if (r + 1 < rows) list.edges.push_back(Edge{id(r, c), id(r + 1, c)});
    }
  }
  return list;
}

EdgeList GenerateRandomTree(int64_t num_nodes, uint64_t seed) {
  AMPC_CHECK_GE(num_nodes, 1);
  Rng rng(seed);
  EdgeList list;
  list.num_nodes = num_nodes;
  for (int64_t i = 1; i < num_nodes; ++i) {
    NodeId parent = static_cast<NodeId>(rng.NextBelow(i));
    list.edges.push_back(Edge{static_cast<NodeId>(i), parent});
  }
  return list;
}

EdgeList GenerateRandomForest(int64_t num_nodes, int64_t num_trees,
                              uint64_t seed) {
  AMPC_CHECK_GE(num_trees, 1);
  AMPC_CHECK_GE(num_nodes, num_trees);
  Rng rng(seed);
  EdgeList list;
  list.num_nodes = num_nodes;
  // Nodes [0, num_trees) are roots; node i >= num_trees attaches to a
  // uniformly random earlier node within its tree (tree = i % num_trees).
  for (int64_t i = num_trees; i < num_nodes; ++i) {
    const int64_t tree = i % num_trees;
    // Earlier nodes of this tree: tree, tree + num_trees, ..., < i.
    const int64_t count = (i - tree) / num_trees;
    const int64_t pick = static_cast<int64_t>(rng.NextBelow(count));
    const NodeId parent = static_cast<NodeId>(tree + pick * num_trees);
    list.edges.push_back(Edge{static_cast<NodeId>(i), parent});
  }
  return list;
}

EdgeList GenerateStar(int64_t num_nodes) {
  AMPC_CHECK_GE(num_nodes, 1);
  EdgeList list;
  list.num_nodes = num_nodes;
  for (int64_t i = 1; i < num_nodes; ++i) {
    list.edges.push_back(Edge{0, static_cast<NodeId>(i)});
  }
  return list;
}

EdgeList GenerateComplete(int64_t num_nodes) {
  AMPC_CHECK_GE(num_nodes, 1);
  AMPC_CHECK_LE(num_nodes, 4096);
  EdgeList list;
  list.num_nodes = num_nodes;
  for (int64_t u = 0; u < num_nodes; ++u) {
    for (int64_t v = u + 1; v < num_nodes; ++v) {
      list.edges.push_back(
          Edge{static_cast<NodeId>(u), static_cast<NodeId>(v)});
    }
  }
  return list;
}

EdgeList GenerateRandomTernaryTree(int64_t num_nodes, uint64_t seed) {
  AMPC_CHECK_GE(num_nodes, 1);
  Rng rng(seed);
  EdgeList list;
  list.num_nodes = num_nodes;
  std::vector<int> degree(num_nodes, 0);
  // Maintain the set of nodes with degree < 3 among already-placed nodes.
  std::vector<NodeId> open;
  open.push_back(0);
  for (int64_t i = 1; i < num_nodes; ++i) {
    const size_t pick = rng.NextBelow(open.size());
    const NodeId parent = open[pick];
    list.edges.push_back(Edge{static_cast<NodeId>(i), parent});
    if (++degree[parent] >= 3) {
      open[pick] = open.back();
      open.pop_back();
    }
    degree[i] = 1;
    open.push_back(static_cast<NodeId>(i));
  }
  return list;
}

}  // namespace ampc::graph
