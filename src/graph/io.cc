#include "graph/io.h"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

namespace ampc::graph {
namespace {

constexpr uint64_t kBinaryMagic = 0x414d504347524148ULL;  // "AMPCGRAH"

Status OpenFailure(const std::string& path) {
  return Status::IoError("cannot open file: " + path);
}

}  // namespace

StatusOr<EdgeList> ReadEdgeListText(const std::string& path) {
  std::ifstream in(path);
  if (!in) return OpenFailure(path);
  EdgeList list;
  int64_t declared_nodes = -1;
  int64_t max_id = -1;
  std::string line;
  int64_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    if (line[0] == '#') {
      std::istringstream hs(line.substr(1));
      std::string word;
      if (hs >> word && word == "nodes") {
        hs >> declared_nodes;
      }
      continue;
    }
    std::istringstream ls(line);
    int64_t u, v;
    if (!(ls >> u >> v) || u < 0 || v < 0) {
      return Status::InvalidArgument("bad edge at " + path + ":" +
                                     std::to_string(line_no));
    }
    max_id = std::max({max_id, u, v});
    list.edges.push_back(
        Edge{static_cast<NodeId>(u), static_cast<NodeId>(v)});
  }
  list.num_nodes = declared_nodes >= 0 ? declared_nodes : max_id + 1;
  if (max_id >= list.num_nodes) {
    return Status::InvalidArgument("edge id exceeds declared node count in " +
                                   path);
  }
  return list;
}

StatusOr<WeightedEdgeList> ReadWeightedEdgeListText(const std::string& path) {
  std::ifstream in(path);
  if (!in) return OpenFailure(path);
  WeightedEdgeList list;
  int64_t declared_nodes = -1;
  int64_t max_id = -1;
  std::string line;
  int64_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    if (line[0] == '#') {
      std::istringstream hs(line.substr(1));
      std::string word;
      if (hs >> word && word == "nodes") {
        hs >> declared_nodes;
      }
      continue;
    }
    std::istringstream ls(line);
    int64_t u, v;
    double w;
    if (!(ls >> u >> v >> w) || u < 0 || v < 0) {
      return Status::InvalidArgument("bad weighted edge at " + path + ":" +
                                     std::to_string(line_no));
    }
    max_id = std::max({max_id, u, v});
    list.edges.push_back(WeightedEdge{static_cast<NodeId>(u),
                                      static_cast<NodeId>(v), w,
                                      static_cast<EdgeId>(list.edges.size())});
  }
  list.num_nodes = declared_nodes >= 0 ? declared_nodes : max_id + 1;
  if (max_id >= list.num_nodes) {
    return Status::InvalidArgument("edge id exceeds declared node count in " +
                                   path);
  }
  return list;
}

Status WriteEdgeListText(const EdgeList& list, const std::string& path) {
  std::ofstream out(path);
  if (!out) return OpenFailure(path);
  out << "# nodes " << list.num_nodes << "\n";
  for (const Edge& e : list.edges) out << e.u << " " << e.v << "\n";
  if (!out) return Status::IoError("write failed: " + path);
  return Status::OK();
}

Status WriteWeightedEdgeListText(const WeightedEdgeList& list,
                                 const std::string& path) {
  std::ofstream out(path);
  if (!out) return OpenFailure(path);
  out << "# nodes " << list.num_nodes << "\n";
  for (const WeightedEdge& e : list.edges) {
    out << e.u << " " << e.v << " " << e.w << "\n";
  }
  if (!out) return Status::IoError("write failed: " + path);
  return Status::OK();
}

Status WriteEdgeListBinary(const EdgeList& list, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return OpenFailure(path);
  const uint64_t magic = kBinaryMagic;
  const uint64_t n = static_cast<uint64_t>(list.num_nodes);
  const uint64_t m = list.edges.size();
  out.write(reinterpret_cast<const char*>(&magic), sizeof(magic));
  out.write(reinterpret_cast<const char*>(&n), sizeof(n));
  out.write(reinterpret_cast<const char*>(&m), sizeof(m));
  out.write(reinterpret_cast<const char*>(list.edges.data()),
            static_cast<std::streamsize>(m * sizeof(Edge)));
  if (!out) return Status::IoError("write failed: " + path);
  return Status::OK();
}

StatusOr<EdgeList> ReadEdgeListBinary(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return OpenFailure(path);
  uint64_t magic = 0, n = 0, m = 0;
  in.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  in.read(reinterpret_cast<char*>(&n), sizeof(n));
  in.read(reinterpret_cast<char*>(&m), sizeof(m));
  if (!in || magic != kBinaryMagic) {
    return Status::InvalidArgument("not an AMPC binary edge list: " + path);
  }
  EdgeList list;
  list.num_nodes = static_cast<int64_t>(n);
  list.edges.resize(m);
  in.read(reinterpret_cast<char*>(list.edges.data()),
          static_cast<std::streamsize>(m * sizeof(Edge)));
  if (!in) return Status::IoError("truncated binary edge list: " + path);
  return list;
}

}  // namespace ampc::graph
