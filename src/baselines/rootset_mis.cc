#include "baselines/rootset_mis.h"

#include <atomic>

#include "common/thread_pool.h"
#include "common/timer.h"
#include "core/priorities.h"
#include "seq/greedy.h"

namespace ampc::baselines {
namespace {

using graph::Graph;
using graph::NodeId;

// Mutable adjacency of the residual graph, rebuilt by each phase's second
// shuffle.
struct Residual {
  std::vector<std::vector<NodeId>> adj;
  std::vector<uint8_t> alive;
  int64_t arcs = 0;

  int64_t GraphBytes() const {
    int64_t bytes = 0;
    for (size_t v = 0; v < adj.size(); ++v) {
      if (alive[v]) {
        bytes += kv::kKeyBytes +
                 static_cast<int64_t>(adj[v].size() * sizeof(NodeId));
      }
    }
    return bytes;
  }
};

}  // namespace

RootsetMisResult MpcRootsetMis(sim::Cluster& cluster, const Graph& g,
                               uint64_t seed) {
  const int64_t n = g.num_nodes();
  Residual r;
  r.adj.resize(n);
  r.alive.assign(n, 1);
  for (int64_t v = 0; v < n; ++v) {
    auto nbrs = g.neighbors(static_cast<NodeId>(v));
    r.adj[v].assign(nbrs.begin(), nbrs.end());
    r.arcs += static_cast<int64_t>(nbrs.size());
  }

  RootsetMisResult result;
  result.in_mis.assign(n, 0);
  const int64_t threshold = cluster.config().in_memory_threshold_arcs;

  while (r.arcs > threshold) {
    ++result.phases;
    // (1) LocalMinima: priority below all alive neighbors (no shuffle —
    // each node knows its neighbors and priorities are hashes).
    std::vector<uint8_t> minima(n, 0);
    cluster.RunMapPhase("LocalMinima", n,
                        [&](int64_t v, sim::MachineContext&) {
                          if (!r.alive[v]) return;
                          for (NodeId u : r.adj[v]) {
                            if (core::VertexBefore(u, static_cast<NodeId>(v),
                                                   seed)) {
                              return;
                            }
                          }
                          minima[v] = 1;
                          result.in_mis[v] = 1;
                        });

    // (2)+(3) Mark minima and their neighborhoods for removal — the join
    // is the phase's first shuffle.
    WallTimer mark_timer;
    std::vector<uint8_t> remove(n, 0);
    ParallelForChunked(cluster.pool(), 0, n, 2048,
                       [&](int64_t lo, int64_t hi) {
                         for (int64_t v = lo; v < hi; ++v) {
                           if (!minima[v]) continue;
                           remove[v] = 1;
                           for (NodeId u : r.adj[v]) remove[u] = 1;
                         }
                       });
    cluster.AccountShuffle("MarkNodesToRemove", r.GraphBytes() + n,
                           mark_timer.Seconds());

    // (4)+(5) Drop removed vertices and incident edges; rebuilding the
    // graph is the phase's second shuffle.
    WallTimer rebuild_timer;
    std::atomic<int64_t> new_arcs{0};
    ParallelForChunked(
        cluster.pool(), 0, n, 2048, [&](int64_t lo, int64_t hi) {
          int64_t arcs = 0;
          for (int64_t v = lo; v < hi; ++v) {
            if (!r.alive[v]) continue;
            if (remove[v]) {
              r.alive[v] = 0;
              r.adj[v].clear();
              r.adj[v].shrink_to_fit();
              continue;
            }
            auto& list = r.adj[v];
            size_t out = 0;
            for (NodeId u : list) {
              if (!remove[u]) list[out++] = u;
            }
            list.resize(out);
            arcs += static_cast<int64_t>(out);
          }
          new_arcs.fetch_add(arcs, std::memory_order_relaxed);
        });
    r.arcs = new_arcs.load();
    cluster.AccountShuffle("RemoveNodesAndEdges", r.GraphBytes(),
                           rebuild_timer.Seconds());
  }

  // In-memory finish on the residual graph (gather + sequential greedy).
  graph::EdgeList rest;
  rest.num_nodes = n;
  for (int64_t v = 0; v < n; ++v) {
    if (!r.alive[v]) continue;
    for (NodeId u : r.adj[v]) {
      if (static_cast<NodeId>(v) < u) {
        rest.edges.push_back(graph::Edge{static_cast<NodeId>(v), u});
      }
    }
  }
  cluster.AccountInMemoryFinish(
      "InMemoryMIS", r.GraphBytes(),
      r.arcs + static_cast<int64_t>(rest.edges.size()));
  graph::Graph rest_graph = graph::BuildGraph(rest);
  std::vector<uint64_t> ranks =
      core::AllVertexRanks(cluster.pool(), n, seed);
  std::vector<uint8_t> local = seq::GreedyMis(rest_graph, ranks);
  for (int64_t v = 0; v < n; ++v) {
    if (r.alive[v] && local[v]) result.in_mis[v] = 1;
  }
  return result;
}

}  // namespace ampc::baselines
