#include "baselines/boruvka.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/parallel.h"
#include "common/random.h"
#include "common/timer.h"
#include "graph/contraction.h"
#include "seq/msf.h"

namespace ampc::baselines {
namespace {

using graph::kInvalidNode;
using graph::NodeId;
using graph::WeightedEdge;
using graph::WeightedEdgeList;

constexpr uint32_t kNoEdge = 0xffffffffu;

}  // namespace

BoruvkaResult MpcBoruvkaMsf(sim::Cluster& cluster,
                            const WeightedEdgeList& list, uint64_t seed) {
  BoruvkaResult result;
  WeightedEdgeList current = list;
  const int64_t threshold = cluster.config().in_memory_threshold_arcs;

  while (2 * static_cast<int64_t>(current.edges.size()) > threshold) {
    ++result.phases;
    const uint64_t phase_seed = seed + 7919ULL * result.phases;
    const int64_t k = current.num_nodes;

    // Minimum-order incident edge per vertex.
    std::vector<uint32_t> min_edge(k, kNoEdge);
    for (uint32_t i = 0; i < current.edges.size(); ++i) {
      const WeightedEdge& e = current.edges[i];
      if (e.u == e.v) continue;
      for (NodeId endpoint : {e.u, e.v}) {
        uint32_t& slot = min_edge[endpoint];
        if (slot == kNoEdge ||
            seq::EdgeLess(e, current.edges[slot])) {
          slot = i;
        }
      }
    }

    // Blue vertices hook into red neighbors along their minimum edge.
    std::vector<NodeId> cluster_of(k);
    int64_t hooks = 0;
    for (int64_t v = 0; v < k; ++v) {
      cluster_of[v] = static_cast<NodeId>(v);
      if (min_edge[v] == kNoEdge) continue;
      const bool blue = (Hash64(v, phase_seed) & 1) == 0;
      if (!blue) continue;
      const WeightedEdge& e = current.edges[min_edge[v]];
      const NodeId other = (e.u == static_cast<NodeId>(v)) ? e.v : e.u;
      const bool other_red = (Hash64(other, phase_seed) & 1) != 0;
      if (!other_red) continue;
      cluster_of[v] = other;
      result.edges.push_back(e.id);
      ++hooks;
    }

    // Contract (three shuffles in the Flume implementation).
    WallTimer timer;
    graph::ContractedGraph contracted =
        graph::ContractEdgeList(current, cluster_of);
    const double wall = timer.Seconds();
    const int64_t edge_bytes =
        static_cast<int64_t>(current.edges.size()) *
        static_cast<int64_t>(sizeof(WeightedEdge));
    const int64_t contracted_bytes =
        static_cast<int64_t>(contracted.list.edges.size()) *
        static_cast<int64_t>(sizeof(WeightedEdge));
    cluster.AccountShuffle("BoruvkaMark", edge_bytes + k, wall / 3);
    cluster.AccountShuffle("BoruvkaRelabel", edge_bytes, wall / 3);
    cluster.AccountShuffle("BoruvkaRebuild", contracted_bytes, wall / 3);

    if (hooks == 0 && contracted.list.num_nodes >= k) {
      // No progress this phase (possible but exponentially unlikely for
      // several phases in a row); the loop simply retries with fresh
      // colors. Guard against an edgeless stall:
      if (current.edges.empty()) break;
    }
    current = std::move(contracted.list);
    if (current.edges.empty()) break;
  }

  // In-memory Kruskal on the residual multigraph.
  const int64_t m = static_cast<int64_t>(current.edges.size());
  cluster.AccountInMemoryFinish(
      "InMemoryMSF", m * static_cast<int64_t>(sizeof(WeightedEdge)),
      m + static_cast<int64_t>(m * std::log2(static_cast<double>(m) + 2)));
  std::vector<graph::EdgeId> finish = seq::KruskalMsf(current);
  result.edges.insert(result.edges.end(), finish.begin(), finish.end());

  ParallelSort(cluster.pool(), result.edges);
  result.edges.erase(std::unique(result.edges.begin(), result.edges.end()),
                     result.edges.end());
  return result;
}

}  // namespace ampc::baselines
