// MPC baseline: connected components via local contractions —
// the stand-in for CC-LocalContraction [Lacki, Mirrokni, Wlodarczyk],
// which the paper uses as the MPC side of the 1-vs-2-Cycle comparison
// (Section 5.6).
//
// Per iteration every vertex hooks to its minimum-rank neighbor when that
// neighbor precedes it in the permutation; the resulting trees are
// contracted (three shuffles, as in the paper's contraction routine). On
// a cycle the survivors are exactly the local rank minima, ~n/3 of the
// vertices, matching the paper's observed 2.59-3x shrink per iteration.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "sim/cluster.h"

namespace ampc::baselines {

struct LocalContractionResult {
  /// component[v] = representative vertex id of v's component.
  std::vector<graph::NodeId> component;
  int64_t num_components = 0;
  int iterations = 0;
};

/// Connected components of an arbitrary undirected graph.
LocalContractionResult MpcLocalContractionCC(sim::Cluster& cluster,
                                             const graph::EdgeList& list,
                                             uint64_t seed);

/// 1-vs-2-Cycle answered through MpcLocalContractionCC (the number of
/// components of a union of cycles is the number of cycles).
int MpcOneVsTwoCycle(sim::Cluster& cluster, const graph::EdgeList& list,
                     uint64_t seed);

}  // namespace ampc::baselines
