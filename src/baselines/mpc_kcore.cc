#include "baselines/mpc_kcore.h"

#include <utility>

#include "common/logging.h"
#include "core/kcore.h"
#include "mpc/dataflow.h"

namespace ampc::baselines {
namespace {

using graph::NodeId;

}  // namespace

MpcKCoreResult MpcKCore(sim::Cluster& cluster, const graph::Graph& g,
                        int max_iterations) {
  const int64_t n = g.num_nodes();
  MpcKCoreResult result;
  result.coreness.assign(n, 0);
  for (NodeId v = 0; v < n; ++v) {
    result.coreness[v] = static_cast<int32_t>(g.degree(v));
  }
  if (n == 0) return result;

  mpc::PCollection<NodeId> vertices(n);
  for (int64_t v = 0; v < n; ++v) vertices[v] = static_cast<NodeId>(v);

  for (;;) {
    AMPC_CHECK_LT(result.iterations, max_iterations)
        << "h-index iteration did not converge";
    ++result.iterations;

    // (1) Every vertex sends its current value to each neighbor.
    mpc::PCollection<mpc::KV<NodeId, int32_t>> messages =
        mpc::ParDo<NodeId, mpc::KV<NodeId, int32_t>>(
            cluster, "EmitValues", vertices,
            [&](NodeId v, auto& emit) {
              const int32_t value = result.coreness[v];
              for (const NodeId u : g.neighbors(v)) emit({u, value});
            });

    // (2) Shuffle messages to their targets (the per-iteration cost the
    // AMPC engine avoids).
    mpc::PCollection<mpc::KV<NodeId, std::vector<int32_t>>> grouped =
        mpc::GroupByKey(cluster, "JoinValues", std::move(messages));

    // (3) Recompute h-indices.
    std::vector<int32_t> next(n, 0);
    int64_t changed = 0;
    for (auto& [v, values] : grouped) {
      next[v] = core::HIndex(values);
    }
    cluster.AccountMapRound("HIndex");
    for (int64_t v = 0; v < n; ++v) {
      changed += next[v] != result.coreness[v];
    }
    result.coreness.swap(next);
    if (changed == 0) break;
  }
  return result;
}

}  // namespace ampc::baselines
