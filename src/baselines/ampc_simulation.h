// The rejected baseline of Section 5.3: simulating the AMPC MIS algorithm
// in plain MPC, "in which each step of querying the key-value store was
// mapped to a shuffle. We observed that this algorithm requires over 1000
// shuffles even for the Orkut and Friendster graphs, and is over 50x
// slower than the rootset-based algorithm."
//
// Without a DHT, an adaptive lookup can only be realized as a
// request/response join, and a vertex's query process is inherently
// sequential (each lookup depends on the previous answer), so the BSP
// round count equals the *longest* per-vertex query chain — not the
// O(log n) dependency depth the rootset algorithm enjoys. This module
// runs the uncached Yoshida-et-al. query process from every vertex,
// records how many sequential lookups each needs, and charges one shuffle
// per synchronized lookup round, reproducing the blow-up the paper
// reports. The MIS itself is identical to core::AmpcMis for the same
// seed (both compute the lexicographically-first MIS).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "sim/cluster.h"

namespace ampc::baselines {

struct SimulatedAmpcMisResult {
  /// in_mis[v] == 1 iff v belongs to the MIS (equals core::AmpcMis).
  std::vector<uint8_t> in_mis;
  /// BSP rounds = shuffles charged = the longest per-vertex query chain.
  int64_t rounds = 0;
  /// Total KV lookups across all vertices (each one rides a shuffle).
  int64_t total_queries = 0;
};

/// Runs the AMPC MIS query process under MPC shuffle-per-query rules.
SimulatedAmpcMisResult MpcSimulatedAmpcMis(sim::Cluster& cluster,
                                           const graph::Graph& g,
                                           uint64_t seed);

}  // namespace ampc::baselines
