#include "baselines/mpc_pagerank.h"

#include <cmath>
#include <utility>

#include "common/logging.h"
#include "mpc/dataflow.h"

namespace ampc::baselines {
namespace {

using graph::NodeId;

}  // namespace

MpcPageRankResult MpcPageRank(sim::Cluster& cluster, const graph::Graph& g,
                              const seq::PageRankOptions& options) {
  const int64_t n = g.num_nodes();
  MpcPageRankResult result;
  if (n == 0) return result;

  const double d = options.damping;
  std::vector<double> rank(n, 1.0 / static_cast<double>(n));

  mpc::PCollection<NodeId> vertices(n);
  for (int64_t v = 0; v < n; ++v) vertices[v] = static_cast<NodeId>(v);

  for (; result.iterations < options.max_iterations;) {
    ++result.iterations;

    // Dangling mass and the uniform base term (cheap aggregation round).
    double dangling = 0.0;
    for (NodeId v = 0; v < n; ++v) {
      if (g.degree(v) == 0) dangling += rank[v];
    }
    cluster.AccountMapRound("DanglingSum");
    const double base = ((1.0 - d) + d * dangling) / static_cast<double>(n);

    // (1) Every vertex sends rank/degree to each neighbor; (2) shuffle
    // shares to their targets; (3) fold into the new rank vector.
    mpc::PCollection<mpc::KV<NodeId, double>> shares =
        mpc::ParDo<NodeId, mpc::KV<NodeId, double>>(
            cluster, "EmitShares", vertices, [&](NodeId v, auto& emit) {
              const int64_t deg = g.degree(v);
              if (deg == 0) return;
              const double share = d * rank[v] / static_cast<double>(deg);
              for (const NodeId u : g.neighbors(v)) emit({u, share});
            });
    mpc::PCollection<mpc::KV<NodeId, std::vector<double>>> grouped =
        mpc::GroupByKey(cluster, "JoinShares", std::move(shares));

    std::vector<double> next(n, base);
    for (const auto& [v, incoming] : grouped) {
      for (const double share : incoming) next[v] += share;
    }
    cluster.AccountMapRound("FoldRanks");

    double delta = 0.0;
    for (int64_t v = 0; v < n; ++v) delta += std::abs(next[v] - rank[v]);
    rank.swap(next);
    if (delta < options.tolerance) break;
  }
  result.rank = std::move(rank);
  return result;
}

}  // namespace ampc::baselines
