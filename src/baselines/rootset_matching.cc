#include "baselines/rootset_matching.h"

#include <algorithm>
#include <atomic>

#include "common/thread_pool.h"
#include "common/timer.h"
#include "core/priorities.h"
#include "seq/greedy.h"

namespace ampc::baselines {
namespace {

using graph::Graph;
using graph::kInvalidNode;
using graph::NodeId;

// Total order on edges shared with core::AmpcMatching.
bool EdgeBefore(NodeId a1, NodeId b1, NodeId a2, NodeId b2, uint64_t seed) {
  const uint64_t r1 = core::EdgeRank(a1, b1, seed);
  const uint64_t r2 = core::EdgeRank(a2, b2, seed);
  if (r1 != r2) return r1 < r2;
  const std::pair<NodeId, NodeId> k1{std::min(a1, b1), std::max(a1, b1)};
  const std::pair<NodeId, NodeId> k2{std::min(a2, b2), std::max(a2, b2)};
  return k1 < k2;
}

}  // namespace

RootsetMatchingResult MpcRootsetMatching(sim::Cluster& cluster,
                                         const Graph& g, uint64_t seed) {
  const int64_t n = g.num_nodes();
  std::vector<std::vector<NodeId>> adj(n);
  std::vector<uint8_t> alive(n, 1);
  int64_t arcs = 0;
  for (int64_t v = 0; v < n; ++v) {
    auto nbrs = g.neighbors(static_cast<NodeId>(v));
    adj[v].assign(nbrs.begin(), nbrs.end());
    arcs += static_cast<int64_t>(nbrs.size());
  }

  auto graph_bytes = [&]() {
    int64_t bytes = 0;
    for (int64_t v = 0; v < n; ++v) {
      if (alive[v]) {
        bytes += kv::kKeyBytes +
                 static_cast<int64_t>(adj[v].size() * sizeof(NodeId));
      }
    }
    return bytes;
  };

  RootsetMatchingResult result;
  result.partner.assign(n, kInvalidNode);
  const int64_t threshold = cluster.config().in_memory_threshold_arcs;

  while (arcs > threshold) {
    ++result.phases;
    // (1) Every vertex finds its minimum-rank incident edge; an edge is a
    // phase winner iff it is the minimum at both endpoints (no shuffle).
    std::vector<NodeId> min_nbr(n, kInvalidNode);
    cluster.RunMapPhase(
        "LocalMinEdge", n, [&](int64_t v, sim::MachineContext&) {
          if (!alive[v] || adj[v].empty()) return;
          NodeId best = adj[v][0];
          for (size_t i = 1; i < adj[v].size(); ++i) {
            const NodeId u = adj[v][i];
            if (EdgeBefore(static_cast<NodeId>(v), u, static_cast<NodeId>(v),
                           best, seed)) {
              best = u;
            }
          }
          min_nbr[v] = best;
        });

    // (2) Commit mutual-minimum edges; mark endpoints (first shuffle:
    // the join marking removals).
    WallTimer mark_timer;
    std::vector<uint8_t> remove(n, 0);
    cluster.RunMapPhase(
        "CommitMatches", n, [&](int64_t v, sim::MachineContext&) {
          const NodeId u = min_nbr[v];
          if (u == kInvalidNode) return;
          if (min_nbr[u] == static_cast<NodeId>(v)) {
            result.partner[v] = u;
            remove[v] = 1;
          }
        });
    cluster.AccountShuffle("MarkMatchedNodes", graph_bytes() + n,
                           mark_timer.Seconds());

    // (3) Remove matched vertices and incident edges (second shuffle).
    WallTimer rebuild_timer;
    std::atomic<int64_t> new_arcs{0};
    ParallelForChunked(
        cluster.pool(), 0, n, 2048, [&](int64_t lo, int64_t hi) {
          int64_t local = 0;
          for (int64_t v = lo; v < hi; ++v) {
            if (!alive[v]) continue;
            if (remove[v]) {
              alive[v] = 0;
              adj[v].clear();
              adj[v].shrink_to_fit();
              continue;
            }
            auto& list = adj[v];
            size_t out = 0;
            for (NodeId u : list) {
              if (!remove[u]) list[out++] = u;
            }
            list.resize(out);
            local += static_cast<int64_t>(out);
          }
          new_arcs.fetch_add(local, std::memory_order_relaxed);
        });
    arcs = new_arcs.load();
    cluster.AccountShuffle("RemoveMatchedNodes", graph_bytes(),
                           rebuild_timer.Seconds());
  }

  // In-memory finish: greedy matching of the residual graph under the
  // same edge order.
  graph::EdgeList rest;
  rest.num_nodes = n;
  for (int64_t v = 0; v < n; ++v) {
    if (!alive[v]) continue;
    for (NodeId u : adj[v]) {
      if (static_cast<NodeId>(v) < u) {
        rest.edges.push_back(graph::Edge{static_cast<NodeId>(v), u});
      }
    }
  }
  cluster.AccountInMemoryFinish("InMemoryMM", graph_bytes(),
                                arcs + static_cast<int64_t>(rest.edges.size()));
  std::vector<uint64_t> ranks =
      core::AllEdgeRanks(cluster.pool(), rest, seed);
  seq::MatchingResult local = seq::GreedyMaximalMatching(rest, ranks);
  for (int64_t v = 0; v < n; ++v) {
    if (local.partner[v] != kInvalidNode) {
      result.partner[v] = local.partner[v];
    }
  }
  return result;
}

}  // namespace ampc::baselines
