// MPC baseline for PageRank: classic power iteration as a dataflow
// pipeline. Every iteration ships each vertex's rank share to its
// neighbors through a GroupByKey — one shuffle per iteration — whereas
// the AMPC Monte-Carlo engine (core/pagerank.h) pays one graph-staging
// shuffle total and then walks the DHT. The baseline is exact (it matches
// seq::PageRankExact to floating-point tolerance); the AMPC engine is an
// estimator — the ext_pagerank bench reports both cost and accuracy.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "seq/pagerank.h"
#include "sim/cluster.h"

namespace ampc::baselines {

struct MpcPageRankResult {
  /// rank[v], summing to 1 (n > 0).
  std::vector<double> rank;
  /// Power iterations (= shuffles) executed.
  int iterations = 0;
};

/// Power-iteration PageRank with one shuffle per iteration.
MpcPageRankResult MpcPageRank(sim::Cluster& cluster, const graph::Graph& g,
                              const seq::PageRankOptions& options = {});

}  // namespace ampc::baselines
