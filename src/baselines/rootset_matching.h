// MPC baseline: rootset-based Maximal Matching (paper Section 5.4).
//
// Per phase, every edge whose rank precedes all adjacent edges joins the
// matching; matched vertices and their incident edges are removed. Two
// shuffles per phase, O(log n) phases; in-memory fallback below the
// threshold. Same rank source as core::AmpcMatching, hence identical
// output for equal seeds.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "sim/cluster.h"

namespace ampc::baselines {

struct RootsetMatchingResult {
  /// partner[v] = matched neighbor or graph::kInvalidNode.
  std::vector<graph::NodeId> partner;
  int phases = 0;
};

RootsetMatchingResult MpcRootsetMatching(sim::Cluster& cluster,
                                         const graph::Graph& g,
                                         uint64_t seed);

}  // namespace ampc::baselines
