// MPC baseline: rootset-based Maximal Independent Set (paper Figure 2).
//
// Per phase: vertices whose rank precedes all alive neighbors join the
// MIS; they and their neighbors are removed. Marking the removals is one
// shuffle (a join) and rebuilding the graph is a second — two shuffles
// per phase, O(log n) phases w.h.p. [Fischer & Noever]. Below the
// in-memory threshold the residual graph is solved on one machine
// (the paper's 5e7-edge cutoff, scaled).
//
// Uses the same rank source as core::AmpcMis, so outputs are identical
// for equal seeds.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "sim/cluster.h"

namespace ampc::baselines {

struct RootsetMisResult {
  std::vector<uint8_t> in_mis;
  int phases = 0;
};

RootsetMisResult MpcRootsetMis(sim::Cluster& cluster, const graph::Graph& g,
                               uint64_t seed);

}  // namespace ampc::baselines
