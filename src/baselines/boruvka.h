// MPC baseline: Borůvka's Minimum Spanning Forest (paper Section 5.5).
//
// Each phase: every vertex colors itself red or blue at random; every
// blue vertex finds its minimum-order incident edge and, when the other
// endpoint is red, contracts into it. Each phase costs three shuffles
// (the contraction), and only shrinks the vertex count by a constant
// factor — the paper observed 11-28 phases (33-84 shuffles). Below the
// threshold an in-memory Kruskal finishes.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "sim/cluster.h"

namespace ampc::baselines {

struct BoruvkaResult {
  /// MSF edge ids (into the input list), sorted.
  std::vector<graph::EdgeId> edges;
  int phases = 0;
};

BoruvkaResult MpcBoruvkaMsf(sim::Cluster& cluster,
                            const graph::WeightedEdgeList& list,
                            uint64_t seed);

}  // namespace ampc::baselines
