#include "baselines/ampc_simulation.h"

#include <algorithm>
#include <mutex>

#include "common/logging.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "core/priorities.h"

namespace ampc::baselines {
namespace {

using graph::Graph;
using graph::NodeId;

// Per-(step, machine) byte profile of the lockstep query rounds:
// bytes[step][m] is the traffic machine m's DHT shard serves at that
// sequential lookup depth.
using StepBytes = std::vector<std::vector<int64_t>>;

// The uncached Yoshida-et-al. query process from `root`: v is in the MIS
// iff none of its preceding (lower-rank) neighbors is. Every descent
// fetches the child's directed adjacency — in this MPC simulation that is
// one synchronized lookup round. Appends the record bytes of the fetch at
// each sequential step index into `bytes_at_step`, charged to the machine
// owning the fetched record's shard.
bool QueryProcess(NodeId root,
                  const std::vector<std::vector<NodeId>>& directed,
                  const sim::Cluster& cluster, StepBytes& bytes_at_step,
                  int64_t* steps_out) {
  struct Frame {
    NodeId v;
    size_t idx = 0;
    bool awaiting = false;
  };
  std::vector<Frame> stack;
  stack.push_back(Frame{root});
  int64_t steps = 0;
  bool last = false;

  while (!stack.empty()) {
    Frame& f = stack.back();
    if (f.awaiting) {
      f.awaiting = false;
      if (last) {
        // A preceding neighbor joined the MIS: f.v does not.
        stack.pop_back();
        last = false;
        continue;
      }
      ++f.idx;
    }
    const std::vector<NodeId>& adj = directed[f.v];
    if (f.idx >= adj.size()) {
      // All preceding neighbors are out: f.v joins the MIS.
      stack.pop_back();
      last = true;
      continue;
    }
    // Descend into the next preceding neighbor. The fetch of its
    // directed adjacency is one sequential lookup round.
    const NodeId u = adj[f.idx];
    if (static_cast<size_t>(steps) >= bytes_at_step.size()) {
      bytes_at_step.resize(
          steps + 1,
          std::vector<int64_t>(cluster.config().num_machines, 0));
    }
    bytes_at_step[steps][cluster.MachineOf(
        u, static_cast<int64_t>(directed.size()))] +=
        static_cast<int64_t>(sizeof(NodeId) * (1 + directed[u].size()));
    ++steps;
    f.awaiting = true;
    stack.push_back(Frame{u});
  }
  *steps_out = steps;
  return last;
}

}  // namespace

SimulatedAmpcMisResult MpcSimulatedAmpcMis(sim::Cluster& cluster,
                                           const Graph& g, uint64_t seed) {
  const int64_t n = g.num_nodes();

  // DirectGraph shuffle, exactly as in the AMPC implementation (Fig. 1
  // step 1): keep lower-rank neighbors, sorted ascending by rank. The
  // per-vertex rows are independent, so both the build and the
  // per-machine byte attribution run chunked on the pool (the old
  // serial loop was an O(V + E) single-thread hot spot per run).
  WallTimer timer;
  const int num_machines = cluster.config().num_machines;
  std::vector<std::vector<NodeId>> directed(n);
  ParallelForChunked(cluster.pool(), 0, n, 512, [&](int64_t lo, int64_t hi) {
    for (int64_t vi = lo; vi < hi; ++vi) {
      const NodeId v = static_cast<NodeId>(vi);
      for (const NodeId u : g.neighbors(v)) {
        if (core::VertexBefore(u, v, seed)) directed[vi].push_back(u);
      }
      std::sort(directed[vi].begin(), directed[vi].end(),
                [&](NodeId a, NodeId b) {
                  return core::VertexBefore(a, b, seed);
                });
    }
  });
  // Each directed adjacency record lands on its vertex's shard owner.
  const std::vector<int64_t> direct_bytes = cluster.AttributeShardedBytes(
      n, [&](int64_t v) { return cluster.MachineOf(v, n); },
      [&](int64_t v) {
        return static_cast<int64_t>(sizeof(NodeId) * (1 + directed[v].size()));
      });
  cluster.AccountShardedShuffle("DirectGraph", direct_bytes, timer.Seconds());

  // Run every vertex's query process and profile its sequential lookup
  // chain. The executions are independent, so they run concurrently
  // here; the *accounting* below serializes them into lockstep rounds.
  SimulatedAmpcMisResult result;
  result.in_mis.assign(n, 0);
  StepBytes bytes_at_step;
  std::mutex mu;
  WallTimer run_timer;
  ParallelForChunked(
      cluster.pool(), 0, n, 256, [&](int64_t lo, int64_t hi) {
        StepBytes local_bytes;
        std::vector<std::pair<int64_t, uint8_t>> local_status;
        int64_t local_queries = 0;
        for (int64_t v = lo; v < hi; ++v) {
          int64_t steps = 0;
          const bool in = QueryProcess(static_cast<NodeId>(v), directed,
                                       cluster, local_bytes, &steps);
          local_status.emplace_back(v, in ? 1 : 0);
          local_queries += steps;
        }
        std::lock_guard<std::mutex> lock(mu);
        if (bytes_at_step.size() < local_bytes.size()) {
          bytes_at_step.resize(local_bytes.size(),
                               std::vector<int64_t>(num_machines, 0));
        }
        for (size_t i = 0; i < local_bytes.size(); ++i) {
          for (int m = 0; m < num_machines; ++m) {
            bytes_at_step[i][m] += local_bytes[i][m];
          }
        }
        for (const auto& [v, in] : local_status) result.in_mis[v] = in;
        result.total_queries += local_queries;
      });
  const double run_wall = run_timer.Seconds();

  // Lockstep accounting: round r ships every vertex's r-th lookup as a
  // request/response join — one shuffle carrying the records fetched at
  // that step. Rounds continue until the deepest chain finishes.
  result.rounds = static_cast<int64_t>(bytes_at_step.size());
  for (size_t r = 0; r < bytes_at_step.size(); ++r) {
    cluster.AccountShardedShuffle(
        "QueryRound", bytes_at_step[r],
        run_wall / std::max<size_t>(1, bytes_at_step.size()));
  }
  return result;
}

}  // namespace ampc::baselines
