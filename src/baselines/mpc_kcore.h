// MPC baseline for core decomposition: the same h-index fixpoint as
// core::AmpcKCore, expressed as a dataflow pipeline. Every iteration must
// move each vertex's current value to all of its neighbors through a
// GroupByKey — one shuffle per iteration, against the AMPC engine's
// single up-front graph shuffle. Both engines execute identical
// iterations, so their outputs (and iteration counts) match exactly.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "sim/cluster.h"

namespace ampc::baselines {

struct MpcKCoreResult {
  /// coreness[v] = largest k such that v is in the k-core.
  std::vector<int32_t> coreness;
  /// h-index iterations until fixpoint (equals the AMPC engine's count).
  int iterations = 0;
};

/// Core decomposition with one shuffle per h-index iteration.
MpcKCoreResult MpcKCore(sim::Cluster& cluster, const graph::Graph& g,
                        int max_iterations = 1 << 20);

}  // namespace ampc::baselines
