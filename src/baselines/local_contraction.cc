#include "baselines/local_contraction.h"

#include <algorithm>
#include <unordered_set>

#include "common/logging.h"
#include "common/timer.h"
#include "core/priorities.h"
#include "graph/contraction.h"
#include "graph/stats.h"

namespace ampc::baselines {
namespace {

using graph::EdgeList;
using graph::kInvalidNode;
using graph::NodeId;
using graph::WeightedEdge;
using graph::WeightedEdgeList;

}  // namespace

LocalContractionResult MpcLocalContractionCC(sim::Cluster& cluster,
                                             const EdgeList& list,
                                             uint64_t seed) {
  const int64_t n = list.num_nodes;
  LocalContractionResult result;
  result.component.assign(n, kInvalidNode);

  // label[v]: current contracted vertex that v belongs to.
  std::vector<NodeId> label(n);
  for (int64_t v = 0; v < n; ++v) label[v] = static_cast<NodeId>(v);

  WeightedEdgeList current;
  current.num_nodes = n;
  current.edges.reserve(list.edges.size());
  for (size_t i = 0; i < list.edges.size(); ++i) {
    current.edges.push_back(WeightedEdge{list.edges[i].u, list.edges[i].v,
                                         1.0,
                                         static_cast<graph::EdgeId>(i)});
  }
  // rep[cluster vertex] = an original representative (stable labels).
  std::vector<NodeId> rep(n);
  for (int64_t v = 0; v < n; ++v) rep[v] = static_cast<NodeId>(v);

  const int64_t threshold = cluster.config().in_memory_threshold_arcs;
  while (2 * static_cast<int64_t>(current.edges.size()) > threshold) {
    ++result.iterations;
    const uint64_t iter_seed = seed + 104729ULL * result.iterations;
    const int64_t k = current.num_nodes;

    // Hook every vertex to its minimum-rank neighbor when that neighbor
    // precedes it; chains are collapsed with path compression (the
    // contraction's pointer work).
    std::vector<NodeId> hook(k);
    for (int64_t v = 0; v < k; ++v) hook[v] = static_cast<NodeId>(v);
    for (const WeightedEdge& e : current.edges) {
      if (e.u == e.v) continue;
      for (int side = 0; side < 2; ++side) {
        const NodeId v = side == 0 ? e.u : e.v;
        const NodeId u = side == 0 ? e.v : e.u;
        if (!core::VertexBefore(u, v, iter_seed)) continue;
        NodeId& h = hook[v];
        if (h == v || core::VertexBefore(u, h, iter_seed)) h = u;
      }
    }
    std::vector<NodeId> root(k, kInvalidNode);
    auto find_root = [&](NodeId start) {
      NodeId v = start;
      std::vector<NodeId> path;
      while (root[v] == kInvalidNode && hook[v] != v) {
        path.push_back(v);
        v = hook[v];
      }
      const NodeId r = root[v] == kInvalidNode ? v : root[v];
      for (NodeId w : path) root[w] = r;
      root[v] = r;
      return r;
    };
    for (int64_t v = 0; v < k; ++v) find_root(static_cast<NodeId>(v));

    // Contract: three shuffles as in the paper's contraction routine.
    WallTimer timer;
    graph::ContractedGraph contracted =
        graph::ContractEdgeList(current, root);
    const double wall = timer.Seconds();
    const int64_t edge_bytes =
        static_cast<int64_t>(current.edges.size()) *
        static_cast<int64_t>(sizeof(WeightedEdge));
    cluster.AccountShuffle("LC-Hook", edge_bytes + k, wall / 3);
    cluster.AccountShuffle("LC-Relabel", edge_bytes, wall / 3);
    cluster.AccountShuffle(
        "LC-Rebuild",
        static_cast<int64_t>(contracted.list.edges.size()) *
            static_cast<int64_t>(sizeof(WeightedEdge)),
        wall / 3);

    // Fold the contraction into the global labels. Vertices whose cluster
    // became isolated keep the cluster root as their final representative.
    std::vector<NodeId> new_rep(contracted.list.num_nodes);
    for (int64_t c = 0; c < contracted.list.num_nodes; ++c) {
      new_rep[c] = rep[contracted.representative[c]];
    }
    for (int64_t v = 0; v < n; ++v) {
      if (label[v] == kInvalidNode) continue;  // already finished
      const NodeId cluster_vertex = root[label[v]];
      const NodeId compact = contracted.compact_of_vertex[cluster_vertex];
      label[v] = compact;
      if (compact == kInvalidNode) {
        // Finished: the whole component contracted to cluster_vertex.
        result.component[v] = rep[cluster_vertex];
      }
    }
    rep = std::move(new_rep);
    current = std::move(contracted.list);
    if (current.edges.empty()) break;
  }

  // In-memory finish on the residual graph.
  const int64_t m = static_cast<int64_t>(current.edges.size());
  cluster.AccountInMemoryFinish(
      "InMemoryCC", m * static_cast<int64_t>(sizeof(WeightedEdge)), m + n);
  EdgeList rest;
  rest.num_nodes = current.num_nodes;
  for (const WeightedEdge& e : current.edges) {
    rest.edges.push_back(graph::Edge{e.u, e.v});
  }
  graph::Graph rest_graph = graph::BuildGraph(rest);
  std::vector<NodeId> rest_labels = graph::SequentialComponents(rest_graph);

  for (int64_t v = 0; v < n; ++v) {
    if (label[v] != kInvalidNode) {
      result.component[v] = rep[rest_labels[label[v]]];
    }
    AMPC_CHECK_NE(result.component[v], kInvalidNode);
  }

  std::unordered_set<NodeId> distinct(result.component.begin(),
                                      result.component.end());
  result.num_components = static_cast<int64_t>(distinct.size());
  return result;
}

int MpcOneVsTwoCycle(sim::Cluster& cluster, const EdgeList& list,
                     uint64_t seed) {
  LocalContractionResult cc = MpcLocalContractionCC(cluster, list, seed);
  return static_cast<int>(cc.num_components);
}

}  // namespace ampc::baselines
